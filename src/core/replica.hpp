// The Heron replica runtime: Algorithm 1 (coordination), Algorithm 2
// (execution with remote reads over dual-versioned objects) and
// Algorithm 3 (state transfer), layered on the atomic multicast endpoint
// and the simulated RDMA fabric.
#pragma once

#include <cstdint>
#include <deque>
#include <set>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "amcast/endpoint.hpp"
#include "core/app.hpp"
#include "core/object_store.hpp"
#include "core/types.hpp"
#include "durable/checkpoint.hpp"
#include "reconfig/chunk.hpp"
#include "sim/stats.hpp"
#include "telemetry/hub.hpp"

namespace heron::core {

class System;

/// Update-log entry: object `oid` was modified by the request with
/// timestamp `tmp` (Algorithm 1 "Variables": log).
struct LogEntry {
  Tmp tmp;
  Oid oid;
};

class Replica {
 public:
  Replica(System& system, GroupId group, int rank);
  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  /// Bootstraps application state and spawns the runtime coroutines.
  void start();

  /// Restart path (the node itself is restarted via the amcast endpoint):
  /// discards volatile runtime state, rebuilds ring cursors from the
  /// surviving registered memory, then spawns a rejoin coroutine that
  /// recovers send-side counters from peers, catches up via Algorithm 3
  /// state transfer, and only then resumes the main loop.
  void restart();

  [[nodiscard]] GroupId group() const { return group_; }
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] rdma::Node& node();
  [[nodiscard]] ObjectStore& store() { return *store_; }
  [[nodiscard]] Application& app() { return *app_; }
  [[nodiscard]] Tmp last_req() const { return last_req_; }
  [[nodiscard]] std::uint64_t executed_count() const { return executed_; }
  [[nodiscard]] std::uint64_t skipped_count() const { return skipped_; }
  [[nodiscard]] std::uint64_t state_transfers() const {
    return state_transfers_;
  }
  [[nodiscard]] std::uint64_t transfers_served() const {
    return transfers_served_;
  }
  [[nodiscard]] std::uint64_t dedup_hits() const { return dedup_hits_; }
  [[nodiscard]] std::uint64_t shed_replies() const { return shed_replies_; }

  /// Per-client session: at-most-once execution bookkeeping plus the last
  /// reply, answered from cache on retries. Exposed for tests and for the
  /// Algorithm 3 transfer of session state.
  struct Session {
    std::uint64_t watermark = 0;         // all seqs <= watermark executed
    std::set<std::uint64_t> above;       // executed seqs > watermark
    std::uint64_t cached_seq = 0;        // seq the cached reply answers
    Reply cached_reply;                  // payload truncated to slot size
    Tmp last_tmp = 0;                    // tmp of the last executed command
    sim::Nanos last_active = 0;          // for session-TTL eviction
    /// Cached-reply payload dropped after a covering checkpoint committed;
    /// a retry pages it back in from the device (answer_paged_reply).
    bool reply_paged_out = false;

    [[nodiscard]] bool executed(std::uint64_t seq) const {
      return seq != 0 && (seq <= watermark || above.contains(seq));
    }
    void mark(std::uint64_t seq) {
      if (seq == 0 || executed(seq)) return;
      above.insert(seq);
      while (above.contains(watermark + 1)) {
        above.erase(watermark + 1);
        ++watermark;
      }
    }
  };
  [[nodiscard]] const std::map<std::uint32_t, Session>& sessions() const {
    return sessions_;
  }
  [[nodiscard]] std::size_t session_count() const { return sessions_.size(); }

  // Durable subsystem state (tests / bench / diagnostics).
  [[nodiscard]] std::size_t update_log_size() const {
    return update_log_.size();
  }
  [[nodiscard]] const std::deque<LogEntry>& update_log() const {
    return update_log_;
  }
  [[nodiscard]] bool log_truncated() const { return log_truncated_; }
  /// Highest tmp ever dropped from the update log (capacity pops,
  /// checkpoint truncation, restart wipe); delta transfers are only
  /// served from at or above it.
  [[nodiscard]] Tmp log_floor() const { return log_floor_; }
  [[nodiscard]] Tmp last_executed() const { return last_executed_; }
  /// True from restart() until the rejoin path (checkpoint restore +
  /// catch-up transfer) has completed and execution resumed.
  [[nodiscard]] bool rejoining() const { return rejoining_; }
  [[nodiscard]] Tmp checkpoint_watermark() const { return ckpt_watermark_; }
  [[nodiscard]] std::uint64_t checkpoints_completed() const {
    return checkpoints_;
  }
  [[nodiscard]] std::uint64_t checkpoints_deferred() const {
    return ckpt_deferred_;
  }
  [[nodiscard]] std::uint64_t sessions_evicted() const {
    return sessions_evicted_;
  }
  [[nodiscard]] std::uint64_t stale_session_replies() const {
    return stale_session_replies_;
  }
  [[nodiscard]] bool restored_from_checkpoint() const {
    return restored_from_checkpoint_;
  }
  [[nodiscard]] std::uint64_t restart_catchup_bytes() const {
    return restart_catchup_bytes_;
  }
  [[nodiscard]] std::uint64_t xfer_applied_full_bytes() const {
    return xfer_applied_full_bytes_;
  }
  [[nodiscard]] std::uint64_t xfer_applied_delta_bytes() const {
    return xfer_applied_delta_bytes_;
  }
  /// Null when the durable subsystem is disabled.
  [[nodiscard]] durable::CheckpointStore* durable_store() {
    return ckpt_.get();
  }

  /// Bench/test hook: runs the state-transfer protocol as if this replica
  /// failed to execute the request with timestamp `from` (Algorithm 3
  /// lines 1-6). Returns once the transferred state has been applied.
  /// `have_sessions` marks the request as a delta (the requester certifies
  /// it holds objects and sessions through `from` inclusive).
  sim::Task<void> force_state_transfer(Tmp from, bool have_sessions = false) {
    co_await request_state_transfer(from, have_sessions);
  }

  /// Test hook: advances client `client`'s session last_tmp to `tmp`, as
  /// session_mark does at dispatch — models a later command from that
  /// client being mid-execution (marked, reply not yet cached) when the
  /// checkpoint writer snapshots the session table.
  void test_touch_session(std::uint32_t client, Tmp tmp) {
    const auto it = sessions_.find(client);
    if (it != sessions_.end()) {
      it->second.last_tmp = std::max(it->second.last_tmp, tmp);
    }
  }

  // Measurement hooks (read directly by the harness).
  [[nodiscard]] const CoordStats& coord_stats() const { return coord_stats_; }
  [[nodiscard]] sim::LatencyRecorder& ordering_lat() { return ordering_lat_; }
  [[nodiscard]] sim::LatencyRecorder& coord_lat() { return coord_lat_; }
  [[nodiscard]] sim::LatencyRecorder& exec_lat() { return exec_lat_; }
  void reset_stats();

  // Region handles.
  [[nodiscard]] rdma::MrId coord_mr() const { return coord_mr_; }
  [[nodiscard]] rdma::MrId statesync_mr() const { return statesync_mr_; }
  [[nodiscard]] rdma::MrId addrq_mr() const { return addrq_mr_; }
  [[nodiscard]] rdma::MrId addra_mr() const { return addra_mr_; }
  [[nodiscard]] rdma::MrId staging_mr() const { return staging_mr_; }
  [[nodiscard]] rdma::MrId fastread_mr() const { return fastread_mr_; }

  // Fast-read lease state (tests / diagnostics).
  [[nodiscard]] std::uint64_t lease_epoch() const { return lease_epoch_; }
  [[nodiscard]] sim::Nanos lease_expiry() const { return lease_expiry_; }
  [[nodiscard]] std::uint64_t lease_grants() const { return lease_grants_; }
  [[nodiscard]] std::uint64_t gate_waits() const { return gate_waits_; }

  // Fast-write state (tests / diagnostics).
  /// A fast-write-armed lease grant (kWireFlagFastWrite) has been applied
  /// since the last restart.
  [[nodiscard]] bool fast_write_armed() const { return fast_write_armed_; }
  /// Ordered requests that suspended on a pending INVALIDATE.
  [[nodiscard]] std::uint64_t fast_fence_waits() const {
    return fast_fence_waits_;
  }
  /// Pending INVALIDATEs resolved as aborted (lease expiry / restart).
  [[nodiscard]] std::uint64_t fast_discards() const { return fast_discards_; }
  /// Ordered writes that wiped fast-write residue off a slot.
  [[nodiscard]] std::uint64_t fast_repairs() const { return fast_repairs_; }
  /// Rejoin reconciliation outcomes for slots left pending by a crash.
  [[nodiscard]] std::uint64_t fast_reconciled_adopted() const {
    return fast_adopted_;
  }
  [[nodiscard]] std::uint64_t fast_reconciled_discarded() const {
    return fast_rediscarded_;
  }

  /// Test hook (write-gate takeover regression): bumps the incarnation
  /// WITHOUT restarting, as a failover-driven takeover does, so staleness
  /// checks in in-flight coroutines fire while the store and runtime state
  /// survive untouched.
  void debug_bump_incarnation() { ++incarnation_; }
  /// Test hook: oids currently held seqlock-odd by an in-flight write
  /// phase or write gate of THIS incarnation.
  [[nodiscard]] std::size_t open_bracket_count() const {
    return open_brackets_.size();
  }

  // Reconfiguration state (heron::reconfig; tests / bench / controller).
  [[nodiscard]] const reconfig::Layout& layout() const { return layout_; }
  [[nodiscard]] rdma::MrId reconfig_mr() const { return reconfig_mr_; }
  /// Source role: the background copier has drained the range down to the
  /// seal_dirty_threshold — the controller may order the FLIP marker.
  [[nodiscard]] bool copy_caught_up() const { return copy_caught_up_; }
  /// Source role: FLIP processed; the range has been handed off and this
  /// replica only serves idempotent pull resends from its final image.
  [[nodiscard]] bool outbound_flipped() const { return outbound_flipped_; }
  /// Destination role: no unsealed inbound copy stream (either none was
  /// ever inbound, or the SEAL for the current migration epoch landed).
  [[nodiscard]] bool inbound_sealed() const {
    return inbound_epoch_ == 0 || seal_epoch_seen_ >= inbound_epoch_;
  }
  [[nodiscard]] std::uint64_t copy_chunks_sent() const {
    return copy_chunks_sent_;
  }
  [[nodiscard]] std::uint64_t copy_chunks_received() const {
    return copy_chunks_received_;
  }
  [[nodiscard]] std::uint64_t copy_chunks_corrupt() const {
    return copy_chunks_corrupt_;
  }
  [[nodiscard]] std::uint64_t copy_deferred() const { return copy_deferred_; }
  [[nodiscard]] std::uint64_t copy_pulls() const { return copy_pulls_; }
  [[nodiscard]] std::uint64_t copy_pulls_served() const {
    return copy_pulls_served_;
  }
  [[nodiscard]] std::uint64_t wrong_epoch_replies() const {
    return wrong_epoch_replies_;
  }
  [[nodiscard]] std::uint64_t quiesce_deferred() const {
    return quiesce_deferred_;
  }
  [[nodiscard]] std::uint64_t migrated_out() const { return migrated_out_; }
  [[nodiscard]] std::uint64_t migrated_in() const { return migrated_in_; }
  [[nodiscard]] std::uint64_t checkpoints_rejected_layout() const {
    return ckpt_rejected_layout_;
  }

  // Offset helpers shared with peer writers.
  [[nodiscard]] std::uint64_t coord_offset(GroupId h, int q) const;
  [[nodiscard]] std::uint64_t statesync_offset(int q) const;
  [[nodiscard]] std::uint64_t addrq_offset(std::uint32_t stripe,
                                           std::uint64_t seq) const;
  [[nodiscard]] std::uint64_t addra_offset(std::uint32_t stripe,
                                           std::uint64_t seq) const;
  [[nodiscard]] std::uint64_t staging_offset(int sender_rank,
                                             std::uint64_t seq) const;

 private:
  friend class System;

  // --- main loop (Algorithm 1) ----------------------------------------
  sim::Task<void> main_loop();
  sim::Task<void> handle_request(Request r);
  // §III-D1 extension: one concurrently running single-partition request.
  sim::Task<void> exec_concurrent(Request r, int slot,
                                  std::vector<Oid> keys);
  [[nodiscard]] bool keys_free(const std::vector<Oid>& keys) const;
  sim::Task<void> coordinate(const Request& r, std::uint32_t phase,
                             bool collect_stats);
  void write_coord(const Request& r, std::uint32_t phase);
  [[nodiscard]] bool coord_satisfied(const Request& r, std::uint32_t phase,
                                     bool require_all) const;
  sim::Task<void> send_reply(const Request& r, const Reply& reply);

  // --- execution (Algorithm 2) ----------------------------------------
  struct ExecOutcome {
    bool lagging = false;
    Reply reply;
    /// Oids left seqlock-odd by the write phase (leases enabled only);
    /// the write gate releases them before the reply goes out.
    std::vector<Oid> locked;
  };
  sim::Task<ExecOutcome> execute(const Request& r);
  sim::Task<ExecOutcome> execute_on(const Request& r, sim::Cpu& cpu);
  struct RemoteRead {
    bool lagging = false;
    bool ok = false;
    std::vector<std::byte> value;
  };
  sim::Task<RemoteRead> read_remote(const Request& r, Oid oid, GroupId h);
  sim::Task<bool> resolve_addr(Oid oid, GroupId h);
  sim::Task<void> addr_query_loop();  // answers peers' address queries
  /// Applies the request's writes. With leases enabled, the written oids
  /// stay seqlock-odd (begin_write was called before the write-phase CPU
  /// charge) and are returned in `locked` for the caller to release after
  /// the write gate.
  void apply_writes(const Request& r, ExecContext& ctx);

  // --- fast-read leases -------------------------------------------------
  [[nodiscard]] bool leases_enabled() const;
  /// Handles a lease-grant marker delivered through the ordered stream.
  void apply_lease_grant(const Request& r);
  /// Pushes this replica's applied watermark (last_executed_) into every
  /// peer's fast-read region; called after each execution so the write
  /// gate below can complete.
  void push_applied();
  /// Write gate: before acknowledging a request that wrote under an
  /// active lease, wait until every peer has applied it (or the lease
  /// active at execution time has expired). Releases the seqlock brackets
  /// taken in execute_on.
  sim::Task<void> write_gate(const Request& r, const std::vector<Oid>& locked);
  /// Releases a write-phase seqlock bracket if it is still owned by this
  /// incarnation (see open_brackets_); the only path allowed to end_write.
  void release_bracket(Oid oid);
  /// Answers a core-level ordered read (kReqFlagRead) from the store.
  [[nodiscard]] Reply make_read_reply(const Request& r) const;
  void publish_lease_word();

  // --- fast writes (leased one-sided invalidate/validate) ---------------
  [[nodiscard]] bool fast_writes_enabled() const;
  /// Hermes-style reader fence: before an ordered request touches an oid
  /// whose slot carries a pending INVALIDATE, wait for the writer's
  /// VALIDATE (a one-sided write into the object region), bounded by the
  /// lease expiry; a still-pending slot at expiry is discarded. The
  /// validate-margin rule (HeronConfig::fast_write_val_margin) makes the
  /// outcome identical at every replica.
  sim::Task<void> fast_write_fence(const Request& r);
  /// Single-slot fence, called immediately before each local store read so
  /// no suspension point separates the pending check from the read (the
  /// whole-request fence alone would leave a window where an INVALIDATE
  /// lands and validates elsewhere mid-execution — read inversion).
  sim::Task<void> fence_slot(Oid oid);
  /// Rejoin step: resolves slots left fast-pending across a restart by
  /// sampling live peers — a peer whose lock equals the pending tmp proves
  /// the writer validated (adopt); any other resolved peer state proves it
  /// aborted (discard). Runs before main_loop resumes.
  sim::Task<void> reconcile_fast_slots(std::uint64_t inc);

  // --- state transfer (Algorithm 3) ------------------------------------
  /// `have_sessions` marks the request as a delta (StateSyncEntry status
  /// 2): this replica already holds session state through failed_tmp, so
  /// the donor skips sessions older than that.
  sim::Task<void> request_state_transfer(Tmp failed_tmp,
                                         bool have_sessions = false);
  sim::Task<void> statesync_watch_loop();   // reacts to peers' requests
  sim::Task<void> perform_transfer(int lagger_rank, Tmp from_tmp,
                                   bool sessions_delta);
  sim::Task<void> staging_apply_loop();     // applies incoming chunks
  sim::Task<void> rejoin();                 // restart: recover + catch up

  // --- durability (checkpointing + log compaction) ----------------------
  sim::Task<void> checkpoint_loop();
  sim::Task<void> write_checkpoint_once(std::uint64_t inc);
  /// Installs a restored checkpoint image: objects, sessions, tombstones,
  /// watermarks; charges memcpy-class CPU for the installed bytes.
  sim::Task<void> apply_checkpoint_image(const durable::Image& img);
  /// Retry of a session whose cached reply payload was paged out: fetch
  /// the persisted session record and answer from it.
  sim::Task<void> answer_paged_reply(const Request& r);
  [[nodiscard]] bool session_reply_paged_out(const Request& r) const;

  // --- reconfiguration (heron::reconfig) --------------------------------
  /// One copy-stream record plus its value bytes; the unit the copy
  /// machine batches into CRC'd chunks and the retained final image.
  using CopyItem = std::pair<reconfig::CopyRecord, std::vector<std::byte>>;

  [[nodiscard]] bool reconfig_enabled() const;
  /// Handles a layout-epoch marker (kWireFlagEpoch) from the ordered
  /// stream: installs the new layout; on PREPARE arms the source/dest
  /// roles, on FLIP performs the source-side handoff (lease cutoff, final
  /// delta + SEAL, range retirement).
  sim::Task<void> apply_epoch_marker(const Request& r);
  /// Publishes layout_.epoch into the fast-read region (read one-sided by
  /// rejoining peers to reject checkpoints from a superseded layout).
  void publish_epoch_word();
  /// Oids a request's routing is judged by: the read oid (kReqFlagRead)
  /// or the app read_set. Empty when the request carries no parseable
  /// keys (order-only payloads).
  [[nodiscard]] std::vector<Oid> request_oids(const Request& r) const;
  /// True while any of `oids` lies in an inbound migration range whose
  /// copy stream has not sealed yet (dual-epoch quiesce window).
  [[nodiscard]] bool touches_unsealed_inbound(
      const std::vector<Oid>& oids) const;
  [[nodiscard]] Reply make_wrong_epoch_reply(Oid oid) const;
  /// Source-side background copier: pass 0 snapshots the whole range,
  /// later passes drain the dirty set, throttled against foreground load.
  sim::Task<void> copy_machine(std::uint64_t mig_epoch);
  /// Streams `items` as CRC'd chunks into dest's per-source-rank ring.
  /// `seal` flags the last chunk; `throttle` defers between chunks under
  /// foreground load. Erases each landed object from pass_pending_.
  /// Returns false when the sender went stale mid-stream.
  sim::Task<bool> copy_send(std::vector<CopyItem> items,
                            std::uint64_t mig_epoch, GroupId dest_group,
                            int dest_rank, bool seal, bool throttle,
                            std::uint64_t inc);
  /// Destination-side consumer: drains chunk rings in seq order, verifies
  /// CRCs, applies records newest-wins, tracks stream dirtiness and seals.
  sim::Task<void> copy_recv_loop();
  /// Destination-side starvation watcher: no inbound progress for
  /// pull_timeout -> write a pull word to the next source rank.
  sim::Task<void> inbound_watch_loop(std::uint64_t mig_epoch);
  /// Source-side pull server: answers a dest rank's pull word with an
  /// idempotent full resend of the retained final image (+ SEAL).
  sim::Task<void> pull_watch_loop();
  /// Union-merges a copy-streamed session into the local table.
  void merge_session(std::uint32_t client, Session&& incoming);
  /// State-transfer kRecLayout payload: adopts the donor's layout when
  /// newer and max-merges its seal knowledge.
  void adopt_layout_record(std::span<const std::byte> payload);
  /// Rejoin tail: re-arms the copy machine (source) or inbound tracking
  /// (dest) for a migration still active in the adopted layout, after
  /// recovering send counters from the peer rings.
  sim::Task<void> resume_migration_roles(std::uint64_t inc);

  /// True when a coroutine spawned under incarnation `inc` must exit (the
  /// node crashed, or restarted and fresh loops took over).
  [[nodiscard]] bool stale(std::uint64_t inc) {
    return !node().alive() || inc != incarnation_;
  }
  /// Oids touched by logged updates the requester still needs: at/above
  /// from_tmp (failed-request semantics) or strictly above it when
  /// `held_through` (delta request: from_tmp itself is already applied).
  /// Sets full_transfer when the log cannot cover the range.
  [[nodiscard]] std::vector<Oid> log_objects_since(Tmp from_tmp,
                                                   bool held_through,
                                                   bool& full_transfer) const;
  void log_update(Tmp tmp, Oid oid);
  [[nodiscard]] std::uint64_t staging_pending() const;

  System* system_;
  GroupId group_;
  int rank_;
  std::unique_ptr<Application> app_;
  std::unique_ptr<ObjectStore> store_;

  rdma::MrId coord_mr_{}, statesync_mr_{}, addrq_mr_{}, addra_mr_{},
      staging_mr_{};

  // --- sessions (at-most-once execution) -------------------------------
  std::map<std::uint32_t, Session> sessions_;  // client id -> session
  std::uint64_t dedup_hits_ = 0;
  std::uint64_t shed_replies_ = 0;
  /// Records that `r` is being executed (called at dispatch, before the
  /// execution completes, so a duplicate arriving mid-execution is caught).
  void session_mark(const Request& r);
  [[nodiscard]] bool session_executed(const Request& r) const;
  void session_cache_reply(const Request& r, const Reply& reply);
  /// Cached reply only when `seq` is exactly the cached one; in-flight or
  /// stale duplicates stay silent (the live attempt owns the reply slot).
  [[nodiscard]] const Reply* session_cached(const Request& r) const;
  /// Post-execution bookkeeping: caches the reply and fires the system's
  /// exec observer (the exactly-once oracle's evidence stream).
  void note_executed(const Request& r, const Reply& reply);

  // --- fast-read lease state -------------------------------------------
  rdma::MrId fastread_mr_{};
  std::uint64_t lease_epoch_ = 0;     // tmp of the latest applied grant
  sim::Nanos lease_expiry_ = 0;       // absolute; monotone across grants
  std::uint64_t lease_grants_ = 0;
  std::uint64_t gate_waits_ = 0;      // gates that actually suspended

  // --- fast-write state --------------------------------------------------
  bool fast_write_armed_ = false;  // armed lease grant applied (sticky)
  /// Seqlock brackets opened by THIS incarnation's write phases and not
  /// yet released. A takeover (incarnation bump without restart) must not
  /// let the stale gate's release path touch brackets a fresh incarnation
  /// opened, and conversely the bump itself must not strand the stale
  /// gate's brackets odd — release_bracket() keys off this set.
  std::set<Oid> open_brackets_;
  /// Slots found fast-pending by restart(); rejoin() reconciles them with
  /// peers before the main loop resumes.
  std::vector<Oid> fast_pending_at_restart_;
  std::uint64_t fast_fence_waits_ = 0;
  std::uint64_t fast_discards_ = 0;
  std::uint64_t fast_repairs_ = 0;
  std::uint64_t fast_adopted_ = 0;
  std::uint64_t fast_rediscarded_ = 0;

  Tmp last_req_ = 0;       // Algorithm 1: tmp of the last request (delivered)
  Tmp last_executed_ = 0;  // highest tmp whose writes are applied locally
  std::uint64_t executed_ = 0;
  std::uint64_t skipped_ = 0;
  std::uint64_t state_transfers_ = 0;
  std::uint64_t transfers_served_ = 0;
  std::uint64_t statesync_serial_ = 0;
  bool in_state_transfer_ = false;

  // Bumped on every restart(); see stale().
  std::uint64_t incarnation_ = 0;

  // Remote object map: oid -> per-rank location in the home partition
  // (the paper's object_map of <oid, q> -> addr).
  struct RemoteLoc {
    std::uint64_t offset = 0;
    std::uint32_t size = 0;
    bool known = false;
  };
  std::unordered_map<Oid, std::vector<RemoteLoc>> object_map_;
  std::vector<std::uint64_t> addrq_sent_;   // per target stripe
  std::vector<std::uint64_t> addrq_next_;   // consumer cursor per stripe
  std::vector<std::uint64_t> addra_next_;   // consumer cursor per stripe

  // Update log (ring semantics with truncation flag).
  std::deque<LogEntry> update_log_;
  bool log_truncated_ = false;
  /// Highest tmp evicted by a *capacity* pop (not checkpoint truncation).
  /// A delta checkpoint is unsound once this passes ckpt_watermark_ —
  /// dirty entries were lost — so the next checkpoint is forced full.
  Tmp log_dropped_max_ = 0;
  /// Highest tmp dropped from the log by *any* path; see log_floor().
  Tmp log_floor_ = 0;
  bool rejoining_ = false;

  // --- durable subsystem state ------------------------------------------
  std::unique_ptr<durable::CheckpointStore> ckpt_;  // null when disabled
  Tmp ckpt_watermark_ = 0;          // watermark of the last committed ckpt
  /// Session-TTL tombstones: client id -> evicted floor (all seqs <= floor
  /// were executed before eviction). Persisted and transferred.
  std::map<std::uint32_t, std::uint64_t> evicted_sessions_;
  std::uint64_t checkpoints_ = 0;
  std::uint64_t ckpt_deferred_ = 0;
  std::uint64_t sessions_evicted_ = 0;
  std::uint64_t stale_session_replies_ = 0;
  bool restored_from_checkpoint_ = false;
  std::uint64_t restart_catchup_bytes_ = 0;  // applied during last rejoin
  std::uint64_t xfer_applied_full_bytes_ = 0;
  std::uint64_t xfer_applied_delta_bytes_ = 0;

  // Staging ring cursors (state-transfer receive side).
  std::vector<std::uint64_t> staging_next_;  // per sender rank
  std::vector<std::uint64_t> staging_sent_;  // per receiver rank (send side)

  // --- reconfiguration state (heron::reconfig) ---------------------------
  reconfig::Layout layout_;      // installed layout; epoch 0 = disabled
  rdma::MrId reconfig_mr_{};     // copy rings + pull words (when enabled)
  // Source role (outbound migration). outbound_epoch_/outbound_ survive
  // the FLIP so the pull server knows which stream it re-seals.
  bool outbound_active_ = false;   // PREPARE seen, FLIP not yet processed
  bool outbound_flipped_ = false;  // FLIP processed; serving pulls only
  std::uint64_t outbound_epoch_ = 0;  // PREPARE epoch of the migration
  reconfig::Migration outbound_;
  std::set<Oid> migration_dirty_;  // written since last drained pass
  std::set<Oid> pass_pending_;     // collected for a pass, not yet on wire
  bool copy_caught_up_ = false;
  /// Snapshot of the handed-off range (+ all sessions/tombstones) taken
  /// at FLIP, kept in memory to serve idempotent pull resends after the
  /// live objects were retired.
  std::vector<CopyItem> final_image_;
  std::vector<std::uint64_t> copy_seq_;   // send counter per dest rank
  std::vector<std::uint64_t> pull_seen_;  // handled pull serial per rank
  // Destination role (inbound migration).
  std::uint64_t inbound_epoch_ = 0;  // PREPARE epoch; 0 = none inbound
  reconfig::Migration inbound_;
  std::uint64_t seal_epoch_seen_ = 0;  // highest cleanly sealed epoch
  bool inbound_stream_dirty_ = false;  // gap/CRC failure since last seal try
  sim::Nanos inbound_progress_at_ = 0;
  std::uint64_t pull_serial_ = 0;  // our outgoing pull-word serial
  std::uint64_t pull_rr_ = 0;      // round-robin source pick for pulls
  std::vector<std::uint64_t> copy_next_;  // consumer cursor per source rank
  // Telemetry-backed counters.
  std::uint64_t copy_chunks_sent_ = 0;
  std::uint64_t copy_chunks_received_ = 0;
  std::uint64_t copy_chunks_corrupt_ = 0;
  std::uint64_t copy_deferred_ = 0;
  std::uint64_t copy_pulls_ = 0;
  std::uint64_t copy_pulls_served_ = 0;
  std::uint64_t wrong_epoch_replies_ = 0;
  std::uint64_t quiesce_deferred_ = 0;
  std::uint64_t migrated_out_ = 0;
  std::uint64_t migrated_in_ = 0;
  std::uint64_t ckpt_rejected_layout_ = 0;

  // Multi-threaded execution state (exec_threads > 1).
  std::vector<std::unique_ptr<sim::Cpu>> exec_cpus_;
  std::vector<bool> slot_busy_;
  std::set<Oid> locked_keys_;
  int inflight_ = 0;
  std::unique_ptr<sim::Notifier> exec_done_;

  // Stats.
  CoordStats coord_stats_;
  sim::LatencyRecorder ordering_lat_;
  sim::LatencyRecorder coord_lat_;
  sim::LatencyRecorder exec_lat_;

  // Telemetry handles (see telemetry/hub.hpp), keyed by "g<g>.r<r>".
  telemetry::Hub* hub_;
  telemetry::Counter* ctr_executed_;
  telemetry::Counter* ctr_skipped_;
  telemetry::Counter* ctr_addr_hits_;
  telemetry::Counter* ctr_addr_misses_;
  telemetry::Counter* ctr_remote_reads_;
  telemetry::Counter* ctr_remote_retries_;
  telemetry::Counter* ctr_lagging_;
  telemetry::Counter* ctr_state_transfers_;
  telemetry::Counter* ctr_transfers_served_;
  telemetry::Counter* ctr_xfer_bytes_sent_;
  telemetry::Counter* ctr_xfer_bytes_applied_;
  telemetry::Counter* ctr_xfer_bytes_applied_full_;
  telemetry::Counter* ctr_xfer_bytes_applied_delta_;
  telemetry::Counter* ctr_checkpoints_;
  telemetry::Counter* ctr_ckpt_deferred_;
  telemetry::Counter* ctr_sessions_evicted_;
  telemetry::Counter* ctr_stale_session_;
  telemetry::Gauge* gauge_restart_delta_;
  telemetry::Counter* ctr_dedup_hits_;
  telemetry::Counter* ctr_shed_replies_;
  telemetry::Counter* ctr_lease_grants_;
  telemetry::Counter* ctr_gate_waits_;
  telemetry::Counter* ctr_ordered_reads_;
  telemetry::Counter* ctr_fast_fence_;
  telemetry::Counter* ctr_fast_discards_;
  telemetry::Counter* ctr_fast_repairs_;
  telemetry::Counter* ctr_copy_chunks_;
  telemetry::Counter* ctr_copy_corrupt_;
  telemetry::Counter* ctr_copy_deferred_;
  telemetry::Counter* ctr_copy_pulls_;
  telemetry::Counter* ctr_wrong_epoch_;
  telemetry::Counter* ctr_quiesce_;
  telemetry::Histogram* hist_exec_;
  telemetry::Histogram* hist_coord_;
  telemetry::Histogram* hist_gate_wait_;

  sim::Rng rng_;
};

}  // namespace heron::core
