// Core types of the Heron replica runtime.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "amcast/types.hpp"
#include "durable/config.hpp"
#include "reconfig/layout.hpp"
#include "sim/time.hpp"

namespace heron::core {

using amcast::DstMask;
using amcast::GroupId;
using amcast::MsgUid;

/// Application object identifier (the paper's `oid`). Applications encode
/// table/key structure into the 64 bits however they like.
using Oid = std::uint64_t;

/// Timestamp type: the packed, globally unique timestamps produced by
/// atomic multicast (amcast::pack_ts).
using Tmp = std::uint64_t;

/// Execution mode of a replica (used by the Fig. 4 experiment ladder).
enum class Mode : std::uint8_t {
  kOrderOnly,  // reply at delivery; no coordination, no execution
  kNull,       // coordinate multi-partition requests but execute nothing
  kApp,        // full Heron: coordinate + execute the application
};

/// RequestHeader::flags bit 0: a core-level ordered read. The replica
/// answers it from the object store (value + version + slot address)
/// without invoking the application; it is the fast-read fallback path
/// and doubles as per-replica address resolution for the client's
/// fast-read cache.
constexpr std::uint32_t kReqFlagRead = 1u << 0;

/// Fixed header every client prepends to its application payload.
struct RequestHeader {
  sim::Nanos sent_at = 0;   // client virtual time, for latency breakdowns
  /// Per-client logical command number. Retries of the same command reuse
  /// the session_seq under fresh multicast uids; replicas use it for
  /// at-most-once execution (session dedup). 0 = sessionless (no dedup).
  std::uint64_t session_seq = 0;
  std::uint32_t kind = 0;   // application-defined request type
  std::uint32_t flags = 0;  // kReqFlag* bits
};
static_assert(std::is_trivially_copyable_v<RequestHeader>);

/// A delivered request as seen by the replica and the application.
struct Request {
  MsgUid uid = 0;
  Tmp tmp = 0;
  DstMask dst = 0;
  bool shed = false;  // shed by admission control: reply BUSY, don't execute
  RequestHeader header{};
  std::vector<std::byte> payload;  // application payload (header stripped)

  [[nodiscard]] int partition_count() const { return amcast::dst_count(dst); }
  [[nodiscard]] bool single_partition() const { return partition_count() == 1; }
};

/// Reply written into the client's per-group reply slot.
constexpr std::size_t kMaxReplyPayload = 64;

/// Reserved reply status: the request was shed by admission control and
/// not executed; the client should back off and retry. High value so it
/// cannot collide with application statuses.
constexpr std::uint32_t kStatusBusy = 0xFFFFFF01u;

/// Reserved reply statuses for core-level ordered reads (kReqFlagRead).
constexpr std::uint32_t kStatusReadNotFound = 0xFFFFFF02u;
constexpr std::uint32_t kStatusReadTruncated = 0xFFFFFF03u;

/// Reserved reply status: the request is a retry from a session evicted by
/// the session TTL, at or below the evicted floor. It was NOT re-executed
/// (its original execution may or may not have happened before eviction);
/// the client must treat the outcome as unknown, never as a fresh failure.
constexpr std::uint32_t kStatusStaleSession = 0xFFFFFF04u;

/// Reserved reply status: the request touches a key range this group no
/// longer owns under the replica's installed layout epoch. The request
/// was NOT executed. The payload is a WrongEpochWire describing the new
/// owner of the faulting range; the client applies it to its layout,
/// drops every fast-read cache entry seeded under an older epoch, and
/// re-routes the same session_seq to the new owner.
constexpr std::uint32_t kStatusWrongEpoch = 0xFFFFFF05u;

/// Terminal outcome of Client::submit.
enum class SubmitStatus : std::uint8_t {
  kOk = 0,          // executed (possibly answered from the session cache)
  kTimeout = 1,     // deadline/retry budget exhausted without a reply
  kOverloaded = 2,  // budget exhausted and the last reply was BUSY
};

struct ReplySlot {
  MsgUid uid = 0;        // request this reply answers
  std::uint32_t status = 0;
  std::uint32_t payload_len = 0;
  std::array<std::byte, kMaxReplyPayload> payload{};
};
static_assert(std::is_trivially_copyable_v<ReplySlot>);

/// Application-level reply value.
struct Reply {
  std::uint32_t status = 0;
  std::vector<std::byte> payload;
};

/// Coordination memory entry (Algorithm 1's coord_mem[h][q]).
struct CoordEntry {
  Tmp tmp = 0;
  std::uint32_t state = 0;  // 1 after Phase 2, 2 after Phase 4
  std::uint32_t pad = 0;
};
static_assert(std::is_trivially_copyable_v<CoordEntry>);

/// State-transfer memory entry (Algorithm 3's statesync_mem[q]).
/// status 2 is a delta request: the requester already holds all state
/// (objects AND sessions) up to req_tmp — from a restored checkpoint or
/// from having executed that far — so the donor may skip sessions whose
/// last executed command is below req_tmp. status 1 ships everything.
struct StateSyncEntry {
  Tmp req_tmp = 0;       // request the lagger failed to execute
  std::uint64_t status = 0;  // 0: idle, 1: full request, 2: delta request
  Tmp rid = 0;           // last request covered by the completed transfer
  std::uint64_t serial = 0;  // change detection
};
static_assert(std::is_trivially_copyable_v<StateSyncEntry>);

/// Object-address query/answer records (Algorithm 2 lines 8-13).
struct AddrQuery {
  std::uint64_t seq = 0;
  Oid oid = 0;
};
static_assert(std::is_trivially_copyable_v<AddrQuery>);

struct AddrAnswer {
  std::uint64_t seq = 0;
  Oid oid = 0;
  std::uint64_t offset = 0;  // object slot offset in the object region
  std::uint32_t size = 0;    // object payload size
  std::uint32_t found = 0;
};
static_assert(std::is_trivially_copyable_v<AddrAnswer>);

// --- fast-read path (lease-based linearizable one-sided READs) --------

/// Payload of a lease-grant marker (follows the RequestHeader): the
/// absolute expiry the grant carries. The expiry is computed by the lease
/// manager at submit time, so every replica installs the identical value;
/// the epoch is the marker's delivery timestamp (unique and monotone).
struct LeaseGrantWire {
  sim::Nanos expiry = 0;
};
static_assert(std::is_trivially_copyable_v<LeaseGrantWire>);

/// Lease word published at kFastReadLeaseOffset of a replica's fast-read
/// region; fast readers sample it with a one-sided READ before the slot.
/// epoch == 0 means "no lease" (also the state right after a restart).
struct LeaseWord {
  std::uint64_t epoch = 0;
  sim::Nanos expiry = 0;
};
static_assert(std::is_trivially_copyable_v<LeaseWord>);

/// LeaseWord::epoch bit 63: the lease (and fast READs) stays live, but
/// one-sided fast WRITES are disarmed at this replica — the grant's
/// arming marker has not been delivered yet, or an outbound migration's
/// copy machine is running (a one-sided commit would bypass its dirty
/// tracking and be lost at the destination). Fast-write probes and
/// verifies must treat the bit as "no lease"; fast readers ignore it.
/// Only set when HeronConfig::fast_writes is on, so the published word is
/// byte-identical to older builds otherwise.
constexpr std::uint64_t kLeaseFastWriteDisarmedBit = 1ull << 63;

/// Applied watermark replica q pushes into slot q of each peer's
/// fast-read region after every execution; the write gate waits on it.
struct AppliedWord {
  Tmp tmp = 0;
  sim::Nanos pushed_at = 0;
};
static_assert(std::is_trivially_copyable_v<AppliedWord>);

/// Fast-read region layout: the lease word at offset 0 (own cache line),
/// the replica's installed layout epoch at offset 32 (read by rejoining
/// peers to reject checkpoints from a superseded layout), then one
/// AppliedWord per peer rank.
constexpr std::uint64_t kFastReadLeaseOffset = 0;
constexpr std::uint64_t kFastReadEpochOffset = 32;
constexpr std::uint64_t kFastReadAppliedBase = 64;
constexpr std::uint64_t fastread_applied_offset(int rank) {
  return kFastReadAppliedBase +
         static_cast<std::uint64_t>(rank) * sizeof(AppliedWord);
}
constexpr std::uint64_t fastread_region_bytes(int replicas) {
  return fastread_applied_offset(replicas);
}

/// Ordered-read reply layout (status kOk/...ReadTruncated): this header,
/// then the value bytes. offset/size/rank seed the client's per-replica
/// fast-read address cache (slot offsets may diverge across replicas
/// after a state transfer, so the cache must be per-rank).
struct ReadAnswerWire {
  Tmp tmp = 0;
  std::uint64_t offset = 0;  // slot offset at the replying replica
  std::uint32_t size = 0;    // object payload size
  std::uint32_t rank = 0;    // replying replica's rank
};
static_assert(std::is_trivially_copyable_v<ReadAnswerWire>);

/// Value bytes an ordered-read reply can carry inline.
constexpr std::size_t kMaxReadInline = kMaxReplyPayload - sizeof(ReadAnswerWire);

/// ReadAnswerWire::rank bit 31: the object is stored serialized. Fast
/// writes only apply to raw (non-serialized) objects — a one-sided value
/// overwrite cannot re-serialize — so the client needs the flag to decide
/// eligibility without another round trip. Clients must mask the bit off
/// before using the rank.
constexpr std::uint32_t kReadAnswerSerializedBit = 1u << 31;

// --- fast-write path (leased, one-sided invalidate/validate) -----------

/// Version-timestamp tag for fast writes. Ordered timestamps are packed
/// amcast clocks — small, dense integers — so a fast write cannot squeeze
/// a new timestamp numerically *between* ordered ones. Instead a fast
/// write tags its version with bit 63 set, which makes it compare above
/// every ordered tmp (correct: the fast write happened after the ordered
/// write it sampled as its base) and lets every layer recognize the
/// version as lease-scoped rather than stream-ordered.
///
/// Seqlock-word protocol (Hermes-style invalidate/validate): the writer
/// one-sidedly sets the slot's lock word to `fast_tmp | 1` (odd:
/// INVALIDATE — readers treat the slot as torn), installs the version
/// tagged `fast_tmp` over the older dual-version slot, and, once every
/// replica acked + re-verified, sets the lock to `fast_tmp` (even:
/// VALIDATE). A fast-tagged version is only *valid* while the lock word
/// equals its tmp exactly; anything else (a later bracket, a wipe by an
/// ordered write, a discarded invalidation) makes it an inert remnant
/// that SlotView::current() skips.
constexpr Tmp kFastTmpBit = Tmp{1} << 63;
constexpr bool is_fast_tmp(Tmp t) { return (t & kFastTmpBit) != 0; }

/// Next fast tmp for `client_id` chained on `base` (the current version
/// tmp the writer sampled). Layout: bit 63 | 40-bit chain counter << 23 |
/// 22-bit client tag << 1 | 0. Always even (it doubles as the VALIDATE
/// lock value), strictly greater than `base` when base is itself a fast
/// tmp (counter + 1), and distinct across clients within a chain round,
/// so two concurrent fast writes racing on the same base can never forge
/// each other's INVALIDATE/VALIDATE words.
constexpr Tmp next_fast_tmp(Tmp base, std::uint32_t client_id) {
  const Tmp ctr = is_fast_tmp(base) ? ((base & ~kFastTmpBit) >> 23) : 0;
  return kFastTmpBit | ((ctr + 1) << 23) |
         (((Tmp{client_id} & 0x3FFFFF) + 1) << 1);
}

// --- Client::write fallback reasons (WriteResult::fallback_reason) ------
// Why a write took (or would have taken) the ordered stream instead of
// committing on the leased fast path. Diagnostics only — every reason maps
// to the same recovery: submit the op on the ordered stream, whose
// apply-side wipe erases any one-sided residue the aborted attempt left.
constexpr std::uint32_t kFastWriteNone = 0;          // committed fast
constexpr std::uint32_t kFastWriteDisabled = 1;      // feature/leases off
constexpr std::uint32_t kFastWriteColdCache = 2;     // no current-epoch addr
constexpr std::uint32_t kFastWriteSerialized = 3;    // serialized row
constexpr std::uint32_t kFastWriteSizeMismatch = 4;  // value != slot size
constexpr std::uint32_t kFastWriteNoLease = 5;       // lease absent/expiring
constexpr std::uint32_t kFastWriteConflict = 6;      // torn lock / lost race
constexpr std::uint32_t kFastWriteReplicaFail = 7;   // WC error on a replica

/// Payload of a kStatusWrongEpoch reply: the faulting range [lo, hi)
/// (hi == 0 wraps to 2^64) and its owner under layout epoch `epoch`.
struct WrongEpochWire {
  std::uint64_t epoch = 0;
  Oid lo = 0;
  Oid hi = 0;
  std::int32_t owner = -1;
  std::uint32_t pad = 0;
};
static_assert(std::is_trivially_copyable_v<WrongEpochWire>);
static_assert(sizeof(WrongEpochWire) <= kMaxReplyPayload);

/// Runtime knobs for the Heron replica layer.
struct HeronConfig {
  Mode mode = Mode::kApp;

  /// §III-D1 extension: number of worker cores per replica executing
  /// non-conflicting single-partition requests concurrently. 1 preserves
  /// the paper's single-threaded prototype. >1 requires the application
  /// to report complete conflict_keys() (see core::Application).
  int exec_threads = 1;

  /// Registered object memory per replica.
  std::size_t object_region_bytes = 64u << 20;

  /// Post-majority extra wait in Phase 4, the paper's lagger-avoidance
  /// heuristic (§III-A last paragraph, Table I). 0 disables it.
  sim::Nanos coord_extra_delay = sim::us(3);

  /// Wait-for-all statistics collection (Table I) happens regardless;
  /// this also controls whether Phase 2 uses the extra delay (the paper
  /// applies it only to the second coordination phase).
  bool extra_delay_in_phase2 = false;

  /// State transfer: suspicion timeout per candidate handler.
  sim::Nanos statesync_timeout = sim::ms(5);

  /// State transfer chunk payload (the paper uses 32 KB RDMA writes).
  std::uint32_t statesync_chunk_bytes = 32u << 10;
  std::uint32_t statesync_ring_slots = 64;

  /// Update-log capacity (entries); laggers older than the log tail get a
  /// full-state transfer.
  std::size_t update_log_capacity = 1u << 20;

  /// Per-replica service-time jitter: lognormal sigma applied to each
  /// request's execution CPU. Models real-machine variance (GC, cache,
  /// interrupts); it is what makes stragglers — and hence Table I's
  /// delayed-transaction statistics and the laggers of §III-A — occur.
  double exec_jitter_sigma = 0.08;

  /// Occasional large stalls (GC pause / interrupt storm): probability per
  /// executed request and stall length. Off by default; the coordination
  /// ablation uses them to provoke laggers.
  double hiccup_prob = 0.0;
  sim::Nanos hiccup_duration = sim::us(150);

  /// CPU cost model (calibration handles; see EXPERIMENTS.md).
  sim::Nanos coord_check_proc = sim::us(0.15);  // scan coordination memory
  sim::Nanos exec_dispatch_proc = sim::us(1.0); // request decode + dispatch
  sim::Nanos reply_proc = sim::us(0.5);         // marshal + post the reply
  double serialize_ns_per_byte = 1.0;    // Java-style (de)serialization
  double memcpy_ns_per_byte = 0.05;      // raw copy for non-serialized data

  // --- client request lifecycle (retry / timeout / backoff) -----------
  /// Per-attempt reply timeout. 0 preserves the legacy behaviour: a
  /// single attempt that waits forever (no retries, no deadline).
  sim::Nanos client_attempt_timeout = 0;
  /// Maximum retries after the first attempt (attempts = retries + 1).
  int client_max_retries = 8;
  /// Exponential backoff between attempts: base doubles per retry, each
  /// wait jittered in [delay/2, delay] with the client's seeded RNG.
  sim::Nanos client_retry_backoff = sim::us(50);
  sim::Nanos client_retry_backoff_max = sim::ms(2);
  /// Overall per-request deadline across attempts and backoffs. 0 means
  /// the retry budget alone bounds the request.
  sim::Nanos client_deadline = 0;

  // --- fast reads (lease-based, one-sided) ----------------------------
  /// Lease duration for the linearizable fast-read path. 0 disables the
  /// whole mechanism (seed behaviour: no markers, no watermark pushes,
  /// no write gate). When > 0, a per-partition lease manager multicasts
  /// a grant marker every lease_duration / 2, and writes gate their
  /// acknowledgement on every peer having applied them (capped by the
  /// expiry of the lease active at execution time).
  sim::Nanos lease_duration = 0;
  /// Torn-slot retries before a fast read falls back to the ordered path.
  int fastread_torn_retries = 3;
  /// Fabric-backpressure gate for lease renewal: when > 0 and the rack
  /// uplink of any alive replica of the partition has more than this many
  /// nanoseconds of queued transfer, the lease manager skips that renewal
  /// period instead of adding ordered traffic to a congested partition.
  /// Fast reads then degrade to the ordered path when the current lease
  /// expires and resume on the first post-congestion grant — graceful
  /// degradation instead of marker pile-up. 0 disables the gate.
  sim::Nanos lease_backpressure_threshold = 0;

  // --- fast writes (leased, one-sided invalidate/validate) -------------
  /// Enables the Hermes-style fast write path on top of the fast-read
  /// lease substrate (requires lease_duration > 0). false preserves the
  /// seed behaviour bit for bit: no invalidations are ever issued, no
  /// replica-side fence runs, and same-seed reports stay byte-identical.
  bool fast_writes = false;
  /// Minimum lease time that must remain when a fast writer posts its
  /// VALIDATE words. Replicas discard a still-pending invalidation at
  /// lease expiry; the margin guarantees any VALIDATE that was posted
  /// lands well before that deadline, so either every replica validates
  /// or every replica discards — never a mix.
  sim::Nanos fast_write_val_margin = sim::us(20);

  // --- durability (checkpointing + log compaction) ---------------------
  /// See durable/config.hpp. durable.checkpoint_interval == 0 (default)
  /// keeps the seed behaviour: no device, no checkpoints, restarts rejoin
  /// via a full state transfer without losing volatile watermarks.
  durable::DurableConfig durable;

  // --- elastic repartitioning (heron::reconfig) ------------------------
  /// Size of the layout-partitioned keyspace. 0 (default) keeps the seed
  /// behaviour: no initial layout, no epoch markers, no copy rings. > 0
  /// builds a uniform initial layout over [0, reconfig_keys) at epoch 1,
  /// registers per-replica copy rings, and lets the System's controller
  /// drive scheduled range migrations (System::schedule_migration).
  Oid reconfig_keys = 0;
  /// Copy-machine tuning + fault knobs (see reconfig/layout.hpp).
  reconfig::ReconfigConfig reconfig;
};

/// Floor for the lease manager's renewal period. Renewing faster than the
/// ordering round trip cannot produce usable grants (each expires before it
/// is delivered), yet the marker stream alone can exceed the replicas'
/// per-message CPU budget (~7us/marker on the leader: inbox + leader +
/// deliver processing) and collapse the group — CPU queues grow without
/// bound and commits stop. The floor keeps a misconfigured too-short lease
/// safely degraded (always-expired grants, fully ordered reads) instead.
constexpr sim::Nanos kMinLeaseRenewPeriod = sim::us(10);

/// Per-replica coordination statistics backing Table I.
struct CoordStats {
  std::uint64_t multi_partition = 0;  // coordinated requests
  std::uint64_t delayed = 0;          // majority present but not all
  sim::Nanos delay_sum = 0;           // extra wait until all present
  std::uint64_t gave_up = 0;          // cutoff hit before all present

  [[nodiscard]] double delayed_fraction() const {
    return multi_partition == 0
               ? 0.0
               : static_cast<double>(delayed) /
                     static_cast<double>(multi_partition);
  }
  [[nodiscard]] double avg_delay_us() const {
    return delayed == 0 ? 0.0
                        : sim::to_us(delay_sum) / static_cast<double>(delayed);
  }
};

/// Per-replica stage timing (Fig. 6 breakdown), aggregated by the harness.
struct StageBreakdown {
  sim::Nanos ordering = 0;
  sim::Nanos coordination = 0;
  sim::Nanos execution = 0;
};

}  // namespace heron::core
