// Core types of the Heron replica runtime.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "amcast/types.hpp"
#include "sim/time.hpp"

namespace heron::core {

using amcast::DstMask;
using amcast::GroupId;
using amcast::MsgUid;

/// Application object identifier (the paper's `oid`). Applications encode
/// table/key structure into the 64 bits however they like.
using Oid = std::uint64_t;

/// Timestamp type: the packed, globally unique timestamps produced by
/// atomic multicast (amcast::pack_ts).
using Tmp = std::uint64_t;

/// Execution mode of a replica (used by the Fig. 4 experiment ladder).
enum class Mode : std::uint8_t {
  kOrderOnly,  // reply at delivery; no coordination, no execution
  kNull,       // coordinate multi-partition requests but execute nothing
  kApp,        // full Heron: coordinate + execute the application
};

/// Fixed header every client prepends to its application payload.
struct RequestHeader {
  sim::Nanos sent_at = 0;   // client virtual time, for latency breakdowns
  std::uint32_t kind = 0;   // application-defined request type
  std::uint32_t flags = 0;
};
static_assert(std::is_trivially_copyable_v<RequestHeader>);

/// A delivered request as seen by the replica and the application.
struct Request {
  MsgUid uid = 0;
  Tmp tmp = 0;
  DstMask dst = 0;
  RequestHeader header{};
  std::vector<std::byte> payload;  // application payload (header stripped)

  [[nodiscard]] int partition_count() const { return amcast::dst_count(dst); }
  [[nodiscard]] bool single_partition() const { return partition_count() == 1; }
};

/// Reply written into the client's per-group reply slot.
constexpr std::size_t kMaxReplyPayload = 64;

struct ReplySlot {
  MsgUid uid = 0;        // request this reply answers
  std::uint32_t status = 0;
  std::uint32_t payload_len = 0;
  std::array<std::byte, kMaxReplyPayload> payload{};
};
static_assert(std::is_trivially_copyable_v<ReplySlot>);

/// Application-level reply value.
struct Reply {
  std::uint32_t status = 0;
  std::vector<std::byte> payload;
};

/// Coordination memory entry (Algorithm 1's coord_mem[h][q]).
struct CoordEntry {
  Tmp tmp = 0;
  std::uint32_t state = 0;  // 1 after Phase 2, 2 after Phase 4
  std::uint32_t pad = 0;
};
static_assert(std::is_trivially_copyable_v<CoordEntry>);

/// State-transfer memory entry (Algorithm 3's statesync_mem[q]).
struct StateSyncEntry {
  Tmp req_tmp = 0;       // request the lagger failed to execute
  std::uint64_t status = 0;  // 0: idle, 1: transfer requested
  Tmp rid = 0;           // last request covered by the completed transfer
  std::uint64_t serial = 0;  // change detection
};
static_assert(std::is_trivially_copyable_v<StateSyncEntry>);

/// Object-address query/answer records (Algorithm 2 lines 8-13).
struct AddrQuery {
  std::uint64_t seq = 0;
  Oid oid = 0;
};
static_assert(std::is_trivially_copyable_v<AddrQuery>);

struct AddrAnswer {
  std::uint64_t seq = 0;
  Oid oid = 0;
  std::uint64_t offset = 0;  // object slot offset in the object region
  std::uint32_t size = 0;    // object payload size
  std::uint32_t found = 0;
};
static_assert(std::is_trivially_copyable_v<AddrAnswer>);

/// Runtime knobs for the Heron replica layer.
struct HeronConfig {
  Mode mode = Mode::kApp;

  /// §III-D1 extension: number of worker cores per replica executing
  /// non-conflicting single-partition requests concurrently. 1 preserves
  /// the paper's single-threaded prototype. >1 requires the application
  /// to report complete conflict_keys() (see core::Application).
  int exec_threads = 1;

  /// Registered object memory per replica.
  std::size_t object_region_bytes = 64u << 20;

  /// Post-majority extra wait in Phase 4, the paper's lagger-avoidance
  /// heuristic (§III-A last paragraph, Table I). 0 disables it.
  sim::Nanos coord_extra_delay = sim::us(3);

  /// Wait-for-all statistics collection (Table I) happens regardless;
  /// this also controls whether Phase 2 uses the extra delay (the paper
  /// applies it only to the second coordination phase).
  bool extra_delay_in_phase2 = false;

  /// State transfer: suspicion timeout per candidate handler.
  sim::Nanos statesync_timeout = sim::ms(5);

  /// State transfer chunk payload (the paper uses 32 KB RDMA writes).
  std::uint32_t statesync_chunk_bytes = 32u << 10;
  std::uint32_t statesync_ring_slots = 64;

  /// Update-log capacity (entries); laggers older than the log tail get a
  /// full-state transfer.
  std::size_t update_log_capacity = 1u << 20;

  /// Per-replica service-time jitter: lognormal sigma applied to each
  /// request's execution CPU. Models real-machine variance (GC, cache,
  /// interrupts); it is what makes stragglers — and hence Table I's
  /// delayed-transaction statistics and the laggers of §III-A — occur.
  double exec_jitter_sigma = 0.08;

  /// Occasional large stalls (GC pause / interrupt storm): probability per
  /// executed request and stall length. Off by default; the coordination
  /// ablation uses them to provoke laggers.
  double hiccup_prob = 0.0;
  sim::Nanos hiccup_duration = sim::us(150);

  /// CPU cost model (calibration handles; see EXPERIMENTS.md).
  sim::Nanos coord_check_proc = sim::us(0.15);  // scan coordination memory
  sim::Nanos exec_dispatch_proc = sim::us(1.0); // request decode + dispatch
  sim::Nanos reply_proc = sim::us(0.5);         // marshal + post the reply
  double serialize_ns_per_byte = 1.0;    // Java-style (de)serialization
  double memcpy_ns_per_byte = 0.05;      // raw copy for non-serialized data
};

/// Per-replica coordination statistics backing Table I.
struct CoordStats {
  std::uint64_t multi_partition = 0;  // coordinated requests
  std::uint64_t delayed = 0;          // majority present but not all
  sim::Nanos delay_sum = 0;           // extra wait until all present
  std::uint64_t gave_up = 0;          // cutoff hit before all present

  [[nodiscard]] double delayed_fraction() const {
    return multi_partition == 0
               ? 0.0
               : static_cast<double>(delayed) /
                     static_cast<double>(multi_partition);
  }
  [[nodiscard]] double avg_delay_us() const {
    return delayed == 0 ? 0.0
                        : sim::to_us(delay_sum) / static_cast<double>(delayed);
  }
};

/// Per-replica stage timing (Fig. 6 breakdown), aggregated by the harness.
struct StageBreakdown {
  sim::Nanos ordering = 0;
  sim::Nanos coordination = 0;
  sim::Nanos execution = 0;
};

}  // namespace heron::core
