#include "core/object_store.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "rdma/pod.hpp"

namespace heron::core {

namespace {

// Leaves the seqlock word (offset 0) alone: version installs happen
// outside any write-phase bracket and must not perturb the generation
// count a fast reader may be validating against.
void write_header(std::span<std::byte> slot, Tmp tmp_a, Tmp tmp_b,
                  std::uint32_t size, std::uint32_t serialized_word) {
  rdma::store_pod(slot, 8, tmp_a);
  rdma::store_pod(slot, 16, tmp_b);
  rdma::store_pod(slot, 24, size);
  rdma::store_pod(slot, 28, serialized_word);
}

// Packed serialized word (see SlotView::serialized).
std::uint32_t header_word(Oid oid, bool serialized) {
  return (SlotView::oid_tag(oid) << 1) | (serialized ? 1u : 0u);
}

}  // namespace

SlotView SlotView::parse(std::span<const std::byte> raw) {
  SlotView v;
  v.lock = rdma::load_pod<std::uint64_t>(raw, 0);
  v.tmp_a = rdma::load_pod<Tmp>(raw, 8);
  v.tmp_b = rdma::load_pod<Tmp>(raw, 16);
  v.size = rdma::load_pod<std::uint32_t>(raw, 24);
  v.serialized = rdma::load_pod<std::uint32_t>(raw, 28);
  v.val_a = raw.subspan(header_bytes(), v.size);
  v.val_b = raw.subspan(header_bytes() + v.size, v.size);
  return v;
}

ObjectStore::ObjectStore(rdma::Node& node, std::size_t region_bytes)
    : node_(&node), mr_(node.register_region(region_bytes)) {}

std::span<std::byte> ObjectStore::slot_span(const Entry& e) {
  return node_->region(mr_).bytes().subspan(e.offset,
                                            SlotView::header_bytes() +
                                                2ull * e.size);
}

std::span<const std::byte> ObjectStore::slot_span(const Entry& e) const {
  return node_->region(mr_).bytes().subspan(e.offset,
                                            SlotView::header_bytes() +
                                                2ull * e.size);
}

std::uint64_t ObjectStore::create(Oid oid, std::span<const std::byte> init,
                                  bool serialized) {
  if (index_.contains(oid)) {
    throw std::logic_error("ObjectStore::create: oid exists");
  }
  const auto size = static_cast<std::uint32_t>(init.size());
  const std::uint64_t slot_bytes = SlotView::header_bytes() + 2ull * size;
  if (bump_ + slot_bytes > node_->region(mr_).size()) {
    throw std::runtime_error("ObjectStore: object region exhausted");
  }
  const std::uint64_t offset = bump_;
  bump_ += (slot_bytes + 7) & ~std::uint64_t{7};  // 8-byte align slots

  Entry e{offset, size, serialized};
  auto slot = slot_span(e);
  rdma::store_pod(slot, 0, std::uint64_t{0});  // seqlock: even, generation 0
  write_header(slot, 0, 0, size, header_word(oid, serialized));
  std::memcpy(slot.data() + SlotView::header_bytes(), init.data(), size);
  std::memcpy(slot.data() + SlotView::header_bytes() + size, init.data(),
              size);
  index_.emplace(oid, e);
  return offset;
}

std::pair<Tmp, std::span<const std::byte>> ObjectStore::get(Oid oid) const {
  return view(oid).current();
}

void ObjectStore::retire(Oid oid) {
  const auto it = index_.find(oid);
  if (it == index_.end()) {
    throw std::logic_error("ObjectStore::retire: unknown oid");
  }
  auto slot = slot_span(it->second);
  rdma::store_pod(slot, 24, kRetiredSize);
  index_.erase(it);
}

SlotView ObjectStore::view(Oid oid) const {
  return SlotView::parse(slot_span(index_.at(oid)));
}

void ObjectStore::set(Oid oid, std::span<const std::byte> value, Tmp tmp) {
  const Entry& e = index_.at(oid);
  if (value.size() != e.size) {
    throw std::logic_error("ObjectStore::set: size mismatch");
  }
  auto slot = slot_span(e);
  const auto tmp_a = rdma::load_pod<Tmp>(slot, 8);
  const auto tmp_b = rdma::load_pod<Tmp>(slot, 16);
  if (tmp_a <= tmp_b) {
    rdma::store_pod(slot, 8, tmp);
    std::memcpy(slot.data() + SlotView::header_bytes(), value.data(),
                value.size());
  } else {
    rdma::store_pod(slot, 16, tmp);
    std::memcpy(slot.data() + SlotView::header_bytes() + e.size, value.data(),
                value.size());
  }
}

void ObjectStore::begin_write(Oid oid) {
  auto slot = slot_span(index_.at(oid));
  const auto lock = rdma::load_pod<std::uint64_t>(slot, 0);
  // Already-odd means a nested bracket; keep it odd (outermost end wins).
  rdma::store_pod(slot, 0, lock | 1);
}

void ObjectStore::end_write(Oid oid) {
  auto slot = slot_span(index_.at(oid));
  const auto lock = rdma::load_pod<std::uint64_t>(slot, 0);
  rdma::store_pod(slot, 0, (lock | 1) + 1);  // even, next generation
}

std::uint64_t ObjectStore::seqlock(Oid oid) const {
  return rdma::load_pod<std::uint64_t>(slot_span(index_.at(oid)), 0);
}

bool ObjectStore::fast_pending(Oid oid) const {
  const auto lock = seqlock(oid);
  return (lock & kFastTmpBit) != 0 && (lock & 1) != 0;
}

bool ObjectStore::has_fast_trace(Oid oid) const {
  const auto slot = slot_span(index_.at(oid));
  const auto lock = rdma::load_pod<std::uint64_t>(slot, 0);
  const auto tmp_a = rdma::load_pod<Tmp>(slot, 8);
  const auto tmp_b = rdma::load_pod<Tmp>(slot, 16);
  return ((lock | tmp_a | tmp_b) & kFastTmpBit) != 0;
}

void ObjectStore::discard_pending(Oid oid) {
  auto slot = slot_span(index_.at(oid));
  const auto lock = rdma::load_pod<std::uint64_t>(slot, 0);
  if ((lock & kFastTmpBit) == 0 || (lock & 1) == 0) return;  // not pending
  const Tmp pending = lock & ~std::uint64_t{1};
  const auto tmp_a = rdma::load_pod<Tmp>(slot, 8);
  const auto tmp_b = rdma::load_pod<Tmp>(slot, 16);
  // The surviving version is the sibling of the pending one; when the
  // pending body never landed (crash between the INVALIDATE and the value
  // write), neither tmp matches and the slot still holds its pre-INV
  // versions — keep a committed fast version if one is present, else fall
  // back to a plain even lock that validates the ordered versions.
  Tmp keep;
  if (tmp_a == pending) {
    keep = tmp_b;
  } else if (tmp_b == pending) {
    keep = tmp_a;
  } else if (is_fast_tmp(tmp_a) || is_fast_tmp(tmp_b)) {
    const Tmp fa = is_fast_tmp(tmp_a) ? tmp_a : 0;
    const Tmp fb = is_fast_tmp(tmp_b) ? tmp_b : 0;
    keep = std::max(fa, fb);
  } else {
    keep = 0;  // plain versions only
  }
  const std::uint64_t word =
      is_fast_tmp(keep) ? keep : ((lock & ~kFastTmpBit) | 1) + 1;
  rdma::store_pod(slot, 0, word);
  node_->region(mr_).on_write().notify_all();
}

void ObjectStore::validate_fast(Oid oid, Tmp tmp) {
  auto slot = slot_span(index_.at(oid));
  rdma::store_pod(slot, 0, static_cast<std::uint64_t>(tmp));
  node_->region(mr_).on_write().notify_all();
}

void ObjectStore::clear_fast_lock(Oid oid) {
  auto slot = slot_span(index_.at(oid));
  const auto lock = rdma::load_pod<std::uint64_t>(slot, 0);
  if ((lock & kFastTmpBit) == 0) return;
  // Plain generation 1 (odd) or 2 (even): the absolute count is
  // meaningless to readers (a single atomic sample, no ABA window in the
  // sim), only parity and the cleared tag matter.
  rdma::store_pod(slot, 0, (lock & 1) | 2);
  node_->region(mr_).on_write().notify_all();
}

void ObjectStore::install_slot(Oid oid, std::span<const std::byte> slot_bytes,
                               std::uint32_t size, bool serialized) {
  auto it = index_.find(oid);
  if (it == index_.end()) {
    // Lagger receiving an object it never created (e.g. a TPC-C order row
    // inserted while it lagged): allocate, then overwrite.
    std::vector<std::byte> zero(size);
    create(oid, zero, serialized);
    it = index_.find(oid);
  }
  const Entry& e = it->second;
  if (slot_bytes.size() != SlotView::header_bytes() + 2ull * e.size) {
    throw std::logic_error("ObjectStore::install_slot: size mismatch");
  }
  auto dst = slot_span(e);
  std::memcpy(dst.data(), slot_bytes.data(), slot_bytes.size());
}

void ObjectStore::install_version(Oid oid, std::span<const std::byte> value,
                                  Tmp tmp, bool serialized) {
  auto it = index_.find(oid);
  if (it == index_.end()) {
    create(oid, value, serialized);
    it = index_.find(oid);
  }
  const Entry& e = it->second;
  if (value.size() != e.size) {
    throw std::logic_error("ObjectStore::install_version: size mismatch");
  }
  auto slot = slot_span(e);
  write_header(slot, tmp, tmp, e.size, header_word(oid, e.serialized));
  std::memcpy(slot.data() + SlotView::header_bytes(), value.data(),
              value.size());
  std::memcpy(slot.data() + SlotView::header_bytes() + e.size, value.data(),
              value.size());
}

std::uint64_t ObjectStore::offset_of(Oid oid) const {
  return index_.at(oid).offset;
}

std::uint32_t ObjectStore::size_of(Oid oid) const {
  return index_.at(oid).size;
}

bool ObjectStore::is_serialized(Oid oid) const {
  return index_.at(oid).serialized;
}

std::uint64_t ObjectStore::slot_bytes_of(Oid oid) const {
  return SlotView::header_bytes() + 2ull * index_.at(oid).size;
}

std::span<const std::byte> ObjectStore::raw_slot(Oid oid) const {
  return slot_span(index_.at(oid));
}

}  // namespace heron::core
