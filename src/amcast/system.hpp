// Wiring for an atomic multicast deployment: groups of replica endpoints
// plus client endpoints, all attached to one simulated RDMA fabric.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "amcast/endpoint.hpp"
#include "amcast/types.hpp"
#include "rdma/fabric.hpp"

namespace heron::amcast {

/// Client-side handle: multicasts messages into replica inboxes.
class ClientEndpoint {
 public:
  ClientEndpoint(System& system, std::uint32_t client_id, rdma::Node& node);

  /// Atomically multicasts `payload` to the groups in `dst`. Returns the
  /// message uid after the (modeled) marshal + post cost. `flags` are
  /// kWireFlag* bits carried verbatim to every delivery (e.g. the lease
  /// marker bit).
  sim::Task<MsgUid> multicast(DstMask dst, std::span<const std::byte> payload,
                              std::uint32_t flags = 0);

  [[nodiscard]] std::uint32_t client_id() const { return client_id_; }
  [[nodiscard]] rdma::Node& node() { return *node_; }

 private:
  System* system_;
  std::uint32_t client_id_;
  rdma::Node* node_;
  std::uint64_t next_seq_ = 0;
  std::vector<std::uint64_t> ring_seq_;  // per destination group
};

class System {
 public:
  /// Creates `groups` process groups of `replicas_per_group` members each,
  /// with fresh nodes on `fabric`.
  System(rdma::Fabric& fabric, int groups, int replicas_per_group,
         Config config = {});

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  /// Spawns every endpoint's protocol coroutines.
  void start();

  [[nodiscard]] rdma::Fabric& fabric() { return *fabric_; }
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] int group_count() const { return static_cast<int>(groups_.size()); }
  [[nodiscard]] int replicas_per_group() const { return replicas_per_group_; }
  /// Total replica slots in the system; also the stripe count used for
  /// cross-group proposal regions.
  [[nodiscard]] std::uint32_t total_replicas() const {
    return static_cast<std::uint32_t>(groups_.size()) *
           static_cast<std::uint32_t>(replicas_per_group_);
  }
  /// Flat stripe index of replica (g, rank).
  [[nodiscard]] std::uint32_t stripe_of(GroupId g, int rank) const {
    return static_cast<std::uint32_t>(g) *
               static_cast<std::uint32_t>(replicas_per_group_) +
           static_cast<std::uint32_t>(rank);
  }

  [[nodiscard]] Endpoint& endpoint(GroupId g, int rank) {
    return *groups_[static_cast<std::size_t>(g)][static_cast<std::size_t>(rank)];
  }

  /// Registers a new client with its own node.
  ClientEndpoint& add_client();

  [[nodiscard]] std::uint32_t client_count() const {
    return static_cast<std::uint32_t>(clients_.size());
  }

 private:
  rdma::Fabric* fabric_;
  Config config_;
  int replicas_per_group_;
  std::vector<std::vector<std::unique_ptr<Endpoint>>> groups_;
  std::vector<std::unique_ptr<ClientEndpoint>> clients_;
};

}  // namespace heron::amcast
