#include "amcast/system.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

#include "rdma/pod.hpp"

namespace heron::amcast {

System::System(rdma::Fabric& fabric, int groups, int replicas_per_group,
               Config config)
    : fabric_(&fabric),
      config_(config),
      replicas_per_group_(replicas_per_group) {
  if (groups <= 0 || static_cast<std::uint64_t>(groups) > kMaxGroups) {
    throw std::invalid_argument("amcast: bad group count");
  }
  if (replicas_per_group <= 0) {
    throw std::invalid_argument("amcast: bad replica count");
  }
  groups_.resize(static_cast<std::size_t>(groups));
  for (GroupId g = 0; g < groups; ++g) {
    for (int r = 0; r < replicas_per_group; ++r) {
      auto& node = fabric.add_node();
      groups_[static_cast<std::size_t>(g)].push_back(
          std::make_unique<Endpoint>(*this, g, r, node));
    }
  }
}

void System::start() {
  for (auto& group : groups_) {
    for (auto& ep : group) ep->start();
  }
}

ClientEndpoint& System::add_client() {
  if (client_count() >= config_.max_clients) {
    throw std::runtime_error("amcast: client capacity exhausted");
  }
  auto& node = fabric_->add_node();
  clients_.push_back(
      std::make_unique<ClientEndpoint>(*this, client_count(), node));
  return *clients_.back();
}

ClientEndpoint::ClientEndpoint(System& system, std::uint32_t client_id,
                               rdma::Node& node)
    : system_(&system), client_id_(client_id), node_(&node) {
  system.fabric().telemetry().tracer.set_tid_name(
      node.id(), "client" + std::to_string(client_id));
}

sim::Task<MsgUid> ClientEndpoint::multicast(DstMask dst,
                                            std::span<const std::byte> payload,
                                            std::uint32_t flags) {
  assert(dst != 0);
  assert(payload.size() <= kMaxPayload);
  const auto seq = static_cast<std::uint32_t>(++next_seq_);
  const MsgUid uid = make_uid(client_id_, seq);

  co_await node_->cpu().use(system_->config().client_proc);

  WireMessage msg;
  msg.uid = uid;
  msg.dst = dst;
  msg.flags = flags;
  msg.set_payload(payload);

  // Lease grants and layout-epoch markers are control traffic: their
  // inbox writes ride the priority lane so renewal and reconfiguration
  // never queue behind a congested data plane. Safe for RC ordering:
  // marker senders are dedicated internal endpoints, so their inbox rings
  // carry only control-lane writes.
  const rdma::Lane lane = (flags & (kWireFlagLease | kWireFlagEpoch)) != 0
                              ? rdma::Lane::kControl
                              : rdma::Lane::kData;
  ring_seq_.resize(static_cast<std::size_t>(system_->group_count()), 0);
  for (GroupId g = 0; g < system_->group_count(); ++g) {
    if (!dst_contains(dst, g)) continue;
    msg.ring_seq = ++ring_seq_[static_cast<std::size_t>(g)];
    for (int r = 0; r < system_->replicas_per_group(); ++r) {
      Endpoint& ep = system_->endpoint(g, r);
      system_->fabric().write_async(
          node_->id(),
          rdma::RAddr{ep.node().id(), ep.inbox_mr(),
                      ep.inbox_slot_offset(client_id_, msg.ring_seq)},
          rdma::pod_bytes(msg), lane);
    }
  }
  co_return uid;
}

}  // namespace heron::amcast
