// Shared types for the RDMA-based atomic multicast (RamCast-equivalent).
//
// The protocol is a Skeen-style genuine atomic multicast with replicated
// groups, matching the interface and guarantees Heron consumes (§II-B):
//   Validity, Integrity, Uniform agreement, Uniform prefix order,
//   Uniform acyclic order, and unique monotone timestamps.
//
// Message flow for m multicast to destination set D:
//  1. The client RDMA-writes m into the inbox ring of every replica of
//     every group in D (so a new leader can take over proposals).
//  2. The leader of each g in D assigns a local proposal clock (unique,
//     monotone per group), appends a PROPOSE record to the group log and
//     replicates it to followers; followers ack with one 8-byte write.
//  3. After a majority acked (so failover recovers the same proposal),
//     the leader sends its proposal to all replicas of every group in D.
//  4. When a leader holds proposals from all groups in D it computes the
//     final timestamp = max proposal, packed with the proposing group id
//     for global uniqueness, appends COMMIT, replicates, and waits for a
//     majority ack (uniform agreement).
//  5. Every replica delivers committed messages in final-timestamp order
//     once no uncommitted message could still receive a smaller final
//     timestamp (classic Skeen delivery condition).
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>

#include "sim/time.hpp"

namespace heron::amcast {

using GroupId = std::int32_t;
using MsgUid = std::uint64_t;

/// Upper bound on groups, used to pack timestamps; the paper evaluates up
/// to 16 partitions.
constexpr std::uint64_t kMaxGroups = 64;

/// Largest proposal clock that still packs into 64 bits:
/// pack_ts(kMaxTsClock, kMaxGroups - 1) == UINT64_MAX exactly.
constexpr std::uint64_t kMaxTsClock = ~std::uint64_t{0} / kMaxGroups;

/// Globally unique, totally ordered timestamp: proposal clock in the high
/// bits, proposing-group id in the low bits. Comparing packed values is
/// exactly the (clock, group) lexicographic order.
///
/// Clocks beyond kMaxTsClock would silently wrap and break timestamp
/// monotonicity, so packing saturates at the cap (asserting in debug
/// builds): order is preserved for every representable clock, and clocks
/// at the cap compare by group id only. At one tick per message this is
/// ~2^58 messages — unreachable in any run, but chaos sweeps must not be
/// able to corrupt the order silently.
constexpr std::uint64_t pack_ts(std::uint64_t clock, GroupId group) {
  assert(clock <= kMaxTsClock && "pack_ts: clock exceeds kMaxTsClock");
  if (clock > kMaxTsClock) clock = kMaxTsClock;
  return clock * kMaxGroups + static_cast<std::uint64_t>(group);
}
constexpr std::uint64_t ts_clock(std::uint64_t packed) {
  return packed / kMaxGroups;
}
constexpr GroupId ts_group(std::uint64_t packed) {
  return static_cast<GroupId>(packed % kMaxGroups);
}

/// Message uids encode (client id, per-client sequence). Clients submit in
/// a closed loop, so per-client sequences complete in order.
///
/// The client id is stored biased by one so that no valid (client, seq)
/// pair can produce uid 0 — the inbox ring and the delivery path both use
/// uid 0 as the empty-slot / stale-waiter sentinel, and the unbiased
/// encoding mapped (client 0, seq 0) onto it, silently dropping that
/// message. The bias preserves per-client uid order.
constexpr MsgUid make_uid(std::uint32_t client, std::uint32_t seq) {
  assert(client < 0xffffffffu && "make_uid: client id reserved by the bias");
  return ((static_cast<MsgUid>(client) + 1) << 32) | seq;
}
constexpr std::uint32_t uid_client(MsgUid uid) {
  return static_cast<std::uint32_t>(uid >> 32) - 1;
}
constexpr std::uint32_t uid_seq(MsgUid uid) {
  return static_cast<std::uint32_t>(uid & 0xffffffffULL);
}

/// Destination sets are bitmasks over group ids.
using DstMask = std::uint64_t;

constexpr DstMask dst_of(GroupId g) { return DstMask{1} << g; }
constexpr bool dst_contains(DstMask mask, GroupId g) {
  return (mask >> g) & 1;
}
constexpr int dst_count(DstMask mask) { return __builtin_popcountll(mask); }

/// Maximum application payload carried by one multicast message. TPC-C
/// request descriptors (type + keys) fit comfortably.
constexpr std::size_t kMaxPayload = 256;

/// Client-set wire flags. Bit 0 marks a lease marker: a control command
/// (grant/revoke of the fast-read lease) that rides the ordered stream
/// like any message so that every replica agrees on epoch boundaries —
/// the same trick as the BUSY marker, but set by the sender rather than
/// decided by a leader. The flag travels inside the WireMessage through
/// inbox rings, log replication and failover re-proposals, and surfaces
/// as Delivery::lease.
constexpr std::uint32_t kWireFlagLease = 1u << 0;

/// Bit 1 marks a layout-epoch marker (heron::reconfig): a new partition
/// layout ordered through the stream so that every replica of the
/// affected groups switches layouts at the same stream position. Same
/// delivery mechanics as the lease marker; surfaces as Delivery::epoch.
constexpr std::uint32_t kWireFlagEpoch = 1u << 1;

/// Bit 2 marks a fast-write-armed lease grant (heron fast writes): the
/// sender piggybacks on the lease marker that the partition's clients may
/// use the one-sided invalidate/validate write path for the grant's
/// duration. Replicas arm their reconciliation fence at this ordered
/// position, so every member of the partition enables the machinery at
/// the same stream point. Surfaces as Delivery::fast_write.
constexpr std::uint32_t kWireFlagFastWrite = 1u << 2;

/// A message as written by clients into replica inboxes.
///
/// `ring_seq` is a per-(client, destination-group) counter used purely for
/// inbox-slot addressing: a group only receives the subset of a client's
/// messages that target it, so the globally unique uid cannot double as
/// the ring cursor (the gaps would wedge the ring).
struct WireMessage {
  MsgUid uid = 0;
  std::uint64_t ring_seq = 0;
  DstMask dst = 0;
  std::uint32_t flags = 0;  // kWireFlag* bits, set by the sender
  std::uint32_t payload_len = 0;
  std::array<std::byte, kMaxPayload> payload{};

  void set_payload(std::span<const std::byte> data) {
    payload_len = static_cast<std::uint32_t>(data.size());
    std::memcpy(payload.data(), data.data(), data.size());
  }
  [[nodiscard]] std::span<const std::byte> payload_view() const {
    return {payload.data(), payload_len};
  }
};
static_assert(std::is_trivially_copyable_v<WireMessage>);

/// Group-log record replicated leader -> followers.
///
/// The leader coalesces records into batches: a batch occupies `batch`
/// consecutive log slots and is replicated with one contiguous span write
/// per follower (split only at the ring wrap). The head record carries
/// the batch size; members carry 0. Followers charge their per-record
/// software cost once per batch head, which is what amortizes the
/// follower share of the ordering cost under load. Each record is still
/// fully self-contained, so replay, catch-up and failover stay
/// record-granular.
struct LogRecord {
  enum class Kind : std::uint32_t { kInvalid = 0, kPropose = 1, kCommit = 2 };

  std::uint64_t seq = 0;  // position in the group log, starts at 1
  Kind kind = Kind::kInvalid;
  std::uint32_t flags = 0;  // bit 0: message shed by admission control
  MsgUid uid = 0;
  std::uint64_t value = 0;  // kPropose: proposal clock; kCommit: packed final ts
  std::uint32_t batch = 1;  // batch head: records in this batch; members: 0
  std::uint32_t pad = 0;
  WireMessage msg{};        // payload only meaningful for kPropose
};
static_assert(std::is_trivially_copyable_v<LogRecord>);

/// Proposal exchanged between groups (leader -> all replicas of dst).
struct ProposalRecord {
  std::uint64_t seq = 0;  // per (sender group) stripe sequence, starts at 1
  MsgUid uid = 0;
  GroupId from_group = -1;
  std::uint32_t flags = 0;  // bit 0: sender group shed this message
  std::uint64_t clock = 0;  // the sender group's proposal clock
  DstMask dst = 0;
};
static_assert(std::is_trivially_copyable_v<ProposalRecord>);

/// A message delivered to the application (Heron replica).
struct Delivery {
  MsgUid uid = 0;
  std::uint64_t tmp = 0;  // unique packed timestamp
  DstMask dst = 0;
  std::array<std::byte, kMaxPayload> payload{};
  std::uint32_t payload_len = 0;
  /// Shed by admission control at some destination leader: the message is
  /// still totally ordered (every destination delivers it with the same
  /// flag) but the application must reply BUSY instead of executing.
  bool shed = false;
  /// Sender-marked lease marker (kWireFlagLease): a fast-read lease
  /// grant/revoke command, handled by the replica instead of the app.
  bool lease = false;
  /// Sender-marked layout-epoch marker (kWireFlagEpoch): a partition
  /// layout install/flip, handled by the replica instead of the app.
  bool epoch = false;
  /// Sender-marked fast-write-armed lease grant (kWireFlagFastWrite):
  /// only meaningful alongside `lease`.
  bool fast_write = false;

  [[nodiscard]] std::span<const std::byte> payload_view() const {
    return {payload.data(), payload_len};
  }
};

/// Protocol sizing and CPU-cost knobs. The *_proc costs model the
/// per-message software overhead the paper's Java prototype pays; they
/// are the calibration handles for the "ordering" share of latency.
struct Config {
  std::uint32_t inbox_slots_per_client = 16;
  std::uint32_t max_clients = 256;   // per replica inbox capacity
  std::uint32_t log_slots = 1 << 13;
  std::uint32_t proposal_slots = 1 << 10;  // per sender-replica stripe

  sim::Nanos leader_proc = sim::us(4.0);    // propose / commit handling
  sim::Nanos follower_proc = sim::us(2.5);  // log apply + ack
  sim::Nanos inbox_proc = sim::us(1.0);     // request unmarshal per replica
  sim::Nanos proposal_proc = sim::us(0.5);  // cross-group proposal handling
  sim::Nanos deliver_proc = sim::us(2.0);   // hand-off to the application
  sim::Nanos client_proc = sim::us(3.0);    // marshal + post on the client

  sim::Nanos heartbeat_interval = sim::us(50);
  int heartbeat_misses = 4;  // suspicion threshold
  bool enable_failover = true;

  /// Admission window: if > 0, a leader whose pending + ready backlog has
  /// reached this many messages marks new arrivals as shed. Shed messages
  /// still run through ordering (so every destination agrees) but are
  /// answered with BUSY instead of being executed. 0 disables shedding.
  /// Accounting is at batch granularity: the leader samples the backlog
  /// once per batch and sheds the members that would land beyond the
  /// window, which preserves the per-message contract exactly at
  /// max_batch = 1.
  std::uint32_t admission_window = 0;

  /// Adaptive admission: when enabled (and admission_window > 0), each
  /// leader samples the fabric backpressure signal once per batch — its
  /// rack-uplink queue depth and the credit stalls charged to its node —
  /// and halves its effective window (down to admission_min_window) while
  /// either crosses its threshold. Overload then produces early BUSY
  /// shedding instead of tail-latency collapse. Recovery is hysteretic:
  /// only after admission_recover_samples consecutive clean samples does
  /// the window grow again (multiplicatively, capped at
  /// admission_window), so a flapping uplink cannot oscillate the window
  /// every batch.
  bool adaptive_admission = false;
  std::uint32_t admission_min_window = 2;
  /// Uplink queue depth (ns of queued transfer on the leader's rack
  /// uplink) above which the leader tightens.
  sim::Nanos backpressure_queue_threshold = sim::us(30);
  /// Credit stalls accrued by the leader's node since the previous batch
  /// sample at or above which the leader tightens.
  std::uint64_t backpressure_stall_threshold = 4;
  std::uint32_t admission_recover_samples = 8;

  /// Leader-side batching: the leader drains its propose queue and
  /// coalesces up to `max_batch` messages into one PROPOSE span, one
  /// follower replication + majority-ack round, and one COMMIT span.
  /// Every message keeps its own unique proposal clock and packed final
  /// timestamp, so delivery order and the multicast properties are
  /// untouched; only the per-message software costs are amortized.
  /// 1 disables batching (seed behavior); values are clamped to
  /// kMaxBatchLimit.
  std::uint32_t max_batch = 1;

  /// With batching enabled, how long a leader holding a partial batch
  /// waits for more arrivals before proposing it. 0 proposes immediately
  /// (batches then only form from natural backlog), which keeps the
  /// unloaded single-client latency identical to the unbatched path.
  sim::Nanos batch_timeout = 0;
};

/// Hard cap on Config::max_batch (and so on the PROPOSE span length).
constexpr std::uint32_t kMaxBatchLimit = 64;

}  // namespace heron::amcast
