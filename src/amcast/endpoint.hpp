// Replica-side endpoint of the atomic multicast protocol.
//
// Every replica hosts: an inbox (clients write requests here), a group
// log (the leader replicates PROPOSE/COMMIT records into it), an ack
// array (followers report their applied position), proposal stripes (one
// per potential sender replica in the system, carrying cross-group
// proposals), a heartbeat word and a status page (for failover), and a
// control word (new-leader epoch reset).
//
// See types.hpp for the protocol walk-through and DESIGN.md for the
// failover argument.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "amcast/types.hpp"
#include "rdma/fabric.hpp"
#include "sim/notifier.hpp"
#include "sim/task.hpp"
#include "telemetry/hub.hpp"

namespace heron::amcast {

class System;

/// Failover bookkeeping written by the epoch owner into every follower.
struct ControlMsg {
  std::uint64_t serial = 0;  // change-detected; new value = new message
  std::uint64_t epoch = 0;
  std::uint64_t reset_seq = 0;
  std::int32_t leader_rank = 0;
  std::int32_t pad = 0;
};
static_assert(std::is_trivially_copyable_v<ControlMsg>);

/// Locally maintained, remotely readable summary used during takeover.
struct StatusPage {
  std::uint64_t epoch = 0;
  std::uint64_t applied_seq = 0;
  std::uint64_t clock = 0;
};
static_assert(std::is_trivially_copyable_v<StatusPage>);

/// Epoch-tagged log record as stored in the replicated ring.
struct TaggedLogRecord {
  std::uint64_t epoch = 0;
  LogRecord rec{};
};
static_assert(std::is_trivially_copyable_v<TaggedLogRecord>);

class Endpoint {
 public:
  Endpoint(System& system, GroupId group, int rank, rdma::Node& node);

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  /// Spawns the protocol coroutines. Called once by System::start().
  void start();

  /// Restarts a crashed endpoint: brings the node back up, discards
  /// volatile protocol state, rebuilds producer cursors from the surviving
  /// registered memory, and spawns a rejoin coroutine that replays the
  /// local log, adopts the current epoch/leader from peers, and catches up
  /// the log tail before the protocol loops resume. Safe against stale
  /// pre-crash coroutines via an incarnation counter.
  void restart();

  [[nodiscard]] GroupId group() const { return group_; }
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] rdma::Node& node() { return *node_; }
  [[nodiscard]] bool is_leader() const { return leader_ == rank_; }
  [[nodiscard]] int current_leader() const { return leader_; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] std::uint64_t clock() const { return clock_; }
  [[nodiscard]] std::uint64_t delivered_count() const { return delivered_count_; }

  /// True once at least one delivery is queued for the application.
  [[nodiscard]] bool has_delivery() const { return !ready_.empty(); }

  /// Awaits and returns the next delivered message, in delivery order.
  sim::Task<Delivery> next_delivery();

  /// Awaits at least one delivery and drains the whole ready queue in
  /// delivery order, charging the hand-off cost once for the span. This
  /// is the batched consumer path: under load the application stops
  /// paying a wakeup + deliver_proc per message. Returns an empty vector
  /// to a waiter parked across a crash+restart (the stale sentinel).
  sim::Task<std::vector<Delivery>> next_deliveries();

  /// Non-blocking variant used by pollers.
  std::optional<Delivery> try_next_delivery();

  /// Observer invoked at the instant a message is delivered (before the
  /// application dequeues it). Used by heron::faultlab's history recorder;
  /// must not re-enter the endpoint.
  using DeliveryObserver = std::function<void(const Delivery&)>;
  void set_delivery_observer(DeliveryObserver obs) {
    delivery_observer_ = std::move(obs);
  }

  /// Prints protocol state to stderr (debugging aid for tests).
  void debug_dump() const;

  /// Depth of the leader's propose queue (ordered-but-unproposed uids);
  /// the checkpoint writer uses it as a foreground-load signal.
  [[nodiscard]] std::size_t propose_backlog() const {
    return propose_queue_.size();
  }

  /// Current adaptive admission window (== Config::admission_window when
  /// adaptation is off or the fabric is calm). Tests and benches observe
  /// the tighten/recover cycle through this.
  [[nodiscard]] std::uint32_t effective_admission_window() const {
    return effective_window_;
  }

  // Region handles (published via the System directory).
  [[nodiscard]] rdma::MrId inbox_mr() const { return inbox_mr_; }
  [[nodiscard]] rdma::MrId log_mr() const { return log_mr_; }
  [[nodiscard]] rdma::MrId acks_mr() const { return acks_mr_; }
  [[nodiscard]] rdma::MrId props_mr() const { return props_mr_; }
  [[nodiscard]] rdma::MrId hb_mr() const { return hb_mr_; }
  [[nodiscard]] rdma::MrId status_mr() const { return status_mr_; }
  [[nodiscard]] rdma::MrId control_mr() const { return control_mr_; }

  // Slot address arithmetic, shared with writers (clients, peer leaders).
  [[nodiscard]] std::uint64_t inbox_slot_offset(std::uint32_t client,
                                                std::uint64_t seq) const;
  [[nodiscard]] std::uint64_t log_slot_offset(std::uint64_t seq) const;
  [[nodiscard]] std::uint64_t props_slot_offset(std::uint32_t stripe,
                                                std::uint64_t seq) const;

 private:
  friend class System;

  struct Pending {
    WireMessage msg{};           // known once a PROPOSE or inbox copy is seen
    bool has_msg = false;
    bool proposed_locally = false;
    std::uint64_t local_clock = 0;
    std::uint64_t propose_seq = 0;   // log position of our PROPOSE
    bool propose_acked = false;      // majority-replicated
    bool proposals_sent = false;
    bool committed = false;
    std::uint64_t final_ts = 0;
    std::map<GroupId, std::uint64_t> proposals;  // group -> proposal clock
    DstMask shed_groups = 0;  // groups whose leader shed this message
    bool shed = false;        // committed verdict (any group shed it)
    bool commit_queued = false;  // buffered in commit_buf_, not yet appended
  };

  // --- protocol coroutines -------------------------------------------
  sim::Task<void> inbox_loop();
  sim::Task<void> log_loop();
  sim::Task<void> props_loop();
  sim::Task<void> control_loop();
  sim::Task<void> heartbeat_loop();
  sim::Task<void> batch_loop();  // leader: drain propose queue into batches
  sim::Task<void> finish_batch(std::uint64_t last_seq,
                               std::vector<MsgUid> members);
  sim::Task<void> takeover();
  sim::Task<void> rejoin();  // restart path: replay + adopt + catch up

  /// True when a coroutine spawned under incarnation `inc` must exit: the
  /// node crashed, or it restarted and fresh loops took over.
  [[nodiscard]] bool stale(std::uint64_t inc) const {
    return !node_->alive() || inc != incarnation_;
  }

  // --- helpers --------------------------------------------------------
  /// Samples fabric backpressure (leader uplink queue depth + credit
  /// stalls) and returns the admission window to apply to this batch;
  /// see Config::adaptive_admission for the tighten/recover policy.
  std::uint32_t sample_admission_window();
  void append_local(const LogRecord& rec);     // local ring + apply
  void replicate_span(std::uint64_t first_seq, std::uint64_t count);
  void apply_record(const LogRecord& rec);
  void maybe_commit(MsgUid uid);
  void commit(MsgUid uid);          // buffers into commit_buf_
  void flush_commits();             // appends + replicates buffered commits
  void enqueue_propose(MsgUid uid);
  void try_deliver();
  void update_status_page();
  void note_seen(const WireMessage& msg);
  [[nodiscard]] int majority() const;
  [[nodiscard]] bool propose_majority_acked(std::uint64_t seq) const;
  void send_proposals(MsgUid uid);

  System* system_;
  GroupId group_;
  int rank_;
  rdma::Node* node_;

  rdma::MrId inbox_mr_{}, log_mr_{}, acks_mr_{}, props_mr_{}, hb_mr_{},
      status_mr_{}, control_mr_{};

  // Role / log state.
  int leader_ = 0;
  std::uint64_t epoch_ = 0;
  std::uint64_t clock_ = 0;
  std::uint64_t applied_seq_ = 0;   // highest log record applied
  std::uint64_t append_seq_ = 0;    // leader: highest record appended
  std::uint64_t control_serial_ = 0;
  std::uint64_t hb_value_ = 0;
  bool taking_over_ = false;

  // Bumped on every restart(). Coroutines capture the value at spawn and
  // exit when it no longer matches: a loop parked across a crash+restart
  // must not resume against the rebuilt state.
  std::uint64_t incarnation_ = 0;

  // Adaptive admission state (leader only; see sample_admission_window).
  std::uint32_t effective_window_ = 0;
  std::uint32_t admission_clean_streak_ = 0;
  std::uint64_t admission_last_stalls_ = 0;

  // Message state. Delivered messages are deduplicated exactly: a per-
  // client watermark plus the set of delivered sequences above it. With
  // client retries a later uid (a retry, or the next command after a
  // give-up) can commit before an abandoned earlier uid, so sequences no
  // longer complete in order and a max()-watermark would drop messages
  // inconsistently across groups. The watermark is exclusive ("all seqs
  // below it delivered") so sequence 0 — representable since the uid
  // encoding was made total — starts out undelivered like any other.
  struct DeliveredSet {
    std::uint64_t watermark = 0;        // all seqs < watermark delivered
    std::set<std::uint64_t> above;      // delivered seqs >= watermark

    [[nodiscard]] bool contains(std::uint64_t seq) const {
      return seq < watermark || above.contains(seq);
    }
    void insert(std::uint64_t seq) {
      if (seq < watermark) return;
      above.insert(seq);
      while (above.contains(watermark)) {
        above.erase(watermark);
        ++watermark;
      }
    }
  };

  std::map<MsgUid, Pending> pending_;
  std::vector<DeliveredSet> delivered_;  // per client id
  std::map<MsgUid, WireMessage> seen_;  // inbox'd but not yet proposed
  std::uint64_t delivered_count_ = 0;

  // Leader-side batching. note_seen/takeover enqueue uids; batch_loop
  // drains the queue into PROPOSE batches. Commits ready at the same
  // instant are buffered and flushed as one COMMIT span.
  struct QueuedCommit {
    MsgUid uid = 0;
    std::uint64_t final_ts = 0;
    std::uint32_t flags = 0;
  };
  std::deque<MsgUid> propose_queue_;
  std::unique_ptr<sim::Notifier> batch_notifier_;
  std::vector<QueuedCommit> commit_buf_;

  [[nodiscard]] bool already_delivered(MsgUid uid) const;
  void mark_delivered(MsgUid uid);

  // Per-producer cursors.
  std::vector<std::uint64_t> inbox_next_;           // per client id
  std::vector<std::uint64_t> props_next_;           // per sender stripe
  std::map<std::int32_t, std::uint64_t> props_sent_;  // my counter per receiver node

  // Delivery queue to the application.
  std::deque<Delivery> ready_;
  std::unique_ptr<sim::Notifier> ready_notifier_;
  DeliveryObserver delivery_observer_;

  // Telemetry handles (see telemetry/hub.hpp), keyed by "g<g>.r<r>".
  telemetry::Hub* hub_;
  telemetry::Counter* ctr_proposes_;
  telemetry::Counter* ctr_commits_;
  telemetry::Counter* ctr_deliveries_;
  telemetry::Counter* ctr_takeovers_;
  telemetry::Counter* ctr_reproposals_;
  telemetry::Counter* ctr_shed_;
  telemetry::Counter* ctr_admission_tightened_;
  telemetry::Gauge* gauge_admission_window_;
  telemetry::Histogram* hist_batch_;  // PROPOSE batch sizes (messages)
};

}  // namespace heron::amcast
