#include "amcast/endpoint.hpp"

#include <algorithm>
#include <cassert>
#include <string>

#include "amcast/system.hpp"
#include "rdma/pod.hpp"
#include "sim/log.hpp"

namespace heron::amcast {

namespace {

constexpr std::uint64_t kInboxSlotSize = sizeof(WireMessage);
constexpr std::uint64_t kLogSlotSize = sizeof(TaggedLogRecord);
constexpr std::uint64_t kPropSlotSize = sizeof(ProposalRecord);

}  // namespace

Endpoint::Endpoint(System& system, GroupId group, int rank, rdma::Node& node)
    : system_(&system), group_(group), rank_(rank), node_(&node) {
  const Config& cfg = system.config();
  inbox_mr_ = node.register_region(static_cast<std::size_t>(cfg.max_clients) *
                                   cfg.inbox_slots_per_client * kInboxSlotSize);
  log_mr_ = node.register_region(cfg.log_slots * kLogSlotSize);
  acks_mr_ = node.register_region(
      static_cast<std::size_t>(system.replicas_per_group()) * sizeof(std::uint64_t));
  props_mr_ = node.register_region(static_cast<std::size_t>(system.total_replicas()) *
                                   cfg.proposal_slots * kPropSlotSize);
  hb_mr_ = node.register_region(sizeof(std::uint64_t));
  status_mr_ = node.register_region(sizeof(StatusPage));
  control_mr_ = node.register_region(sizeof(ControlMsg));

  inbox_next_.assign(cfg.max_clients, 0);
  props_next_.assign(system.total_replicas(), 0);
  delivered_.assign(cfg.max_clients, DeliveredSet{});
  ready_notifier_ = std::make_unique<sim::Notifier>(
      system.fabric().simulator());
  batch_notifier_ = std::make_unique<sim::Notifier>(
      system.fabric().simulator());

  hub_ = &system.fabric().telemetry();
  const std::string label =
      "g" + std::to_string(group) + ".r" + std::to_string(rank);
  hub_->tracer.set_tid_name(node.id(), label);
  ctr_proposes_ = &hub_->metrics.counter("amcast", "proposes", label);
  ctr_commits_ = &hub_->metrics.counter("amcast", "commits", label);
  ctr_deliveries_ = &hub_->metrics.counter("amcast", "deliveries", label);
  ctr_takeovers_ = &hub_->metrics.counter("amcast", "takeovers", label);
  ctr_reproposals_ = &hub_->metrics.counter("amcast", "reproposals", label);
  ctr_shed_ = &hub_->metrics.counter("amcast", "shed", label);
  ctr_admission_tightened_ =
      &hub_->metrics.counter("amcast", "admission_tightened", label);
  gauge_admission_window_ =
      &hub_->metrics.gauge("amcast", "admission_window", label);
  hist_batch_ = &hub_->metrics.histogram("amcast", "batch_size", label,
                                         {1, 2, 4, 8, 16, 32, 64});

  effective_window_ = cfg.admission_window;
  admission_last_stalls_ = 0;

  update_status_page();
}

void Endpoint::start() {
  auto& sim = system_->fabric().simulator();
  sim.spawn(inbox_loop());
  sim.spawn(log_loop());
  sim.spawn(props_loop());
  sim.spawn(control_loop());
  sim.spawn(batch_loop());
  if (system_->config().enable_failover) {
    sim.spawn(heartbeat_loop());
  }
}

int Endpoint::majority() const {
  return system_->replicas_per_group() / 2 + 1;
}

bool Endpoint::already_delivered(MsgUid uid) const {
  return delivered_[uid_client(uid)].contains(uid_seq(uid));
}

void Endpoint::mark_delivered(MsgUid uid) {
  delivered_[uid_client(uid)].insert(uid_seq(uid));
}

std::uint64_t Endpoint::inbox_slot_offset(std::uint32_t client,
                                          std::uint64_t seq) const {
  const Config& cfg = system_->config();
  const std::uint64_t slot = seq % cfg.inbox_slots_per_client;
  return (static_cast<std::uint64_t>(client) * cfg.inbox_slots_per_client +
          slot) *
         kInboxSlotSize;
}

std::uint64_t Endpoint::log_slot_offset(std::uint64_t seq) const {
  return (seq % system_->config().log_slots) * kLogSlotSize;
}

std::uint64_t Endpoint::props_slot_offset(std::uint32_t stripe,
                                          std::uint64_t seq) const {
  const Config& cfg = system_->config();
  return (static_cast<std::uint64_t>(stripe) * cfg.proposal_slots +
          seq % cfg.proposal_slots) *
         kPropSlotSize;
}

void Endpoint::update_status_page() {
  rdma::store_pod(node_->region(status_mr_).bytes(), 0,
                  StatusPage{epoch_, applied_seq_, clock_});
}

// ---------------------------------------------------------------------
// Inbox: clients write WireMessages into per-client rings on every
// replica. All replicas track them (so a new leader can re-propose);
// only the leader drives proposals.
// ---------------------------------------------------------------------

sim::Task<void> Endpoint::inbox_loop() {
  const std::uint64_t inc = incarnation_;
  auto& region = node_->region(inbox_mr_);
  const Config& cfg = system_->config();

  // A slot holds the next message for client c when its stored
  // (client, ring_seq) header matches the cursor. `ring_seq > seq` is
  // also accepted: writes addressed to a crashed node are dropped, so a
  // restarted replica may find the ring continuing past a gap — the gap's
  // messages were handled by the surviving majority.
  auto slot_ready = [this, &region](std::uint32_t c) {
    const std::uint64_t seq = inbox_next_[c] + 1;
    const std::uint64_t off = inbox_slot_offset(c, seq);
    const auto uid = rdma::load_pod<MsgUid>(region.bytes(), off);
    const auto ring_seq =
        rdma::load_pod<std::uint64_t>(region.bytes(), off + sizeof(MsgUid));
    return uid_client(uid) == c && ring_seq >= seq && uid != 0;
  };
  auto have_new = [this, slot_ready] {
    const std::uint32_t clients =
        std::min(system_->client_count(), system_->config().max_clients);
    for (std::uint32_t c = 0; c < clients; ++c) {
      if (slot_ready(c)) return true;
    }
    return false;
  };

  while (true) {
    co_await sim::wait_until(region.on_write(), have_new);
    if (stale(inc)) co_return;
    const std::uint32_t clients =
        std::min(system_->client_count(), cfg.max_clients);
    for (std::uint32_t c = 0; c < clients; ++c) {
      while (slot_ready(c)) {
        const std::uint64_t off = inbox_slot_offset(c, inbox_next_[c] + 1);
        const auto msg = rdma::load_pod<WireMessage>(region.bytes(), off);
        inbox_next_[c] =
            rdma::load_pod<std::uint64_t>(region.bytes(), off + sizeof(MsgUid));
        co_await node_->cpu().use(cfg.inbox_proc);
        if (stale(inc)) co_return;
        note_seen(msg);
      }
    }
  }
}

void Endpoint::note_seen(const WireMessage& msg) {
  if (already_delivered(msg.uid)) return;
  // A pending entry may exist purely from a remote group's proposal; only
  // a *local* PROPOSE makes re-proposing unnecessary.
  auto it = pending_.find(msg.uid);
  if (it != pending_.end() && it->second.proposed_locally) return;
  if (!seen_.contains(msg.uid)) {
    seen_.emplace(msg.uid, msg);
    if (is_leader() && !taking_over_) {
      enqueue_propose(msg.uid);
    }
  }
}

void Endpoint::enqueue_propose(MsgUid uid) {
  propose_queue_.push_back(uid);
  batch_notifier_->notify_all();
}

// ---------------------------------------------------------------------
// Leader: propose -> replicate -> (majority ack) -> exchange proposals
// -> commit. One batcher loop drains the propose queue into PROPOSE
// batches; each batch's ack round runs in its own completion coroutine
// so batches pipeline.
// ---------------------------------------------------------------------

sim::Task<void> Endpoint::batch_loop() {
  const std::uint64_t inc = incarnation_;
  const Config& cfg = system_->config();

  while (true) {
    co_await sim::wait_until(*batch_notifier_, [this] {
      return is_leader() && !taking_over_ && !propose_queue_.empty();
    });
    if (stale(inc)) co_return;

    const std::uint32_t max_batch =
        std::min(std::max(cfg.max_batch, 1u), kMaxBatchLimit);
    if (cfg.batch_timeout > 0 && propose_queue_.size() < max_batch) {
      // Low load: hold the partial batch open for more arrivals, but
      // never past the timeout.
      co_await sim::wait_until_timeout(
          *batch_notifier_,
          [this, max_batch] {
            return propose_queue_.size() >= max_batch || !is_leader();
          },
          cfg.batch_timeout);
      if (stale(inc)) co_return;
    }
    if (!is_leader() || taking_over_) continue;

    // Timestamp assignment: one leader CPU charge for the whole batch.
    // Arrivals during the charge still join this batch (up to max_batch),
    // which is the backpressure that grows batches under load.
    co_await node_->cpu().use(cfg.leader_proc);
    if (stale(inc)) co_return;
    if (!is_leader() || taking_over_) continue;

    // Collect the batch members still worth proposing: a queued uid may
    // have been delivered, proposed under an earlier epoch, or duplicated
    // by a takeover re-drive in the meantime.
    std::vector<MsgUid> members;
    while (!propose_queue_.empty() && members.size() < max_batch) {
      const MsgUid uid = propose_queue_.front();
      propose_queue_.pop_front();
      auto seen_it = seen_.find(uid);
      if (seen_it == seen_.end()) continue;  // raced with delivery
      auto it = pending_.find(uid);
      if (it != pending_.end() && it->second.proposed_locally) continue;
      members.push_back(uid);
    }
    if (members.empty()) continue;

    auto batch_span = hub_->tracer.span("amcast", "batch_propose",
                                        node_->id());
    batch_span.arg("size", members.size());

    // Admission control: with a bounded window, shed the members that
    // would land beyond capacity (backlog sampled once per batch; at
    // max_batch = 1 this is exactly the per-message check). A shed
    // message still runs through ordering so every destination group
    // reaches the same verdict via the commit record; the application
    // answers BUSY instead of executing. With adaptive admission the
    // window itself follows the fabric backpressure signal.
    const std::uint32_t window = sample_admission_window();
    const std::size_t backlog = ready_.size() + pending_.size();

    const std::uint64_t first_seq = append_seq_ + 1;
    for (std::size_t i = 0; i < members.size(); ++i) {
      const MsgUid uid = members[i];
      auto [it, inserted] = pending_.try_emplace(uid);
      Pending& p = it->second;
      p.msg = seen_.at(uid);
      p.has_msg = true;
      p.proposed_locally = true;
      p.local_clock = ++clock_;
      p.proposals[group_] = p.local_clock;
      seen_.erase(uid);
      ctr_proposes_->inc();
      // Layout-epoch markers are exempt from shedding: unlike lease
      // grants, which the lease manager re-sends every renewal period, a
      // PREPARE/FLIP marker is multicast exactly once, so shedding it
      // would lose the layout switch cluster-wide while the reconfig
      // controller waits forever for copy/seal progress.
      if (window > 0 && backlog + i + 1 > window &&
          (p.msg.flags & kWireFlagEpoch) == 0) {
        p.shed_groups |= dst_of(group_);
        ctr_shed_->inc();
      }

      LogRecord rec;
      rec.seq = ++append_seq_;
      rec.kind = LogRecord::Kind::kPropose;
      rec.uid = uid;
      rec.value = p.local_clock;
      rec.msg = p.msg;
      rec.flags = dst_contains(p.shed_groups, group_) ? 1u : 0u;
      rec.batch = (i == 0) ? static_cast<std::uint32_t>(members.size()) : 0u;
      p.propose_seq = rec.seq;
      append_local(rec);
    }
    replicate_span(first_seq, members.size());
    update_status_page();
    hist_batch_->observe(static_cast<std::int64_t>(members.size()));

    system_->fabric().simulator().spawn(
        finish_batch(append_seq_, std::move(members)));
  }
}

std::uint32_t Endpoint::sample_admission_window() {
  const Config& cfg = system_->config();
  if (cfg.admission_window == 0) return 0;
  if (!cfg.adaptive_admission) return cfg.admission_window;

  auto& fabric = system_->fabric();
  const sim::Nanos queue = fabric.uplink_backlog(node_->id());
  const std::uint64_t stalls = fabric.credit_stalls(node_->id());
  const std::uint64_t stall_delta = stalls - admission_last_stalls_;
  admission_last_stalls_ = stalls;

  const bool congested = queue > cfg.backpressure_queue_threshold ||
                         stall_delta >= cfg.backpressure_stall_threshold;
  const std::uint32_t floor_window =
      std::min(std::max(cfg.admission_min_window, 1u), cfg.admission_window);
  if (congested) {
    const std::uint32_t tightened = std::max(floor_window,
                                             effective_window_ / 2);
    if (tightened < effective_window_) {
      ctr_admission_tightened_->inc();
      hub_->tracer.instant(
          "amcast", "admission_tighten", node_->id(),
          {{"window", static_cast<std::uint64_t>(tightened)},
           {"uplink_ns", static_cast<std::uint64_t>(queue)},
           {"stalls", stall_delta}});
    }
    effective_window_ = tightened;
    admission_clean_streak_ = 0;
  } else if (effective_window_ < cfg.admission_window &&
             ++admission_clean_streak_ >= cfg.admission_recover_samples) {
    // Multiplicative recovery after a hysteresis delay: grow ~1.5x per
    // clean streak so a recovering leader re-opens in a few batches
    // without flapping on the first calm sample.
    effective_window_ = std::min(cfg.admission_window,
                                 effective_window_ +
                                     std::max(1u, effective_window_ / 2));
    admission_clean_streak_ = 0;
  }
  gauge_admission_window_->set(effective_window_);
  return effective_window_;
}

sim::Task<void> Endpoint::finish_batch(std::uint64_t last_seq,
                                       std::vector<MsgUid> members) {
  const std::uint64_t inc = incarnation_;

  // Wait for a majority of the group to have the whole PROPOSE span
  // before any member can influence another group (failover then always
  // recovers every proposal in the batch). Acks are applied-position
  // watermarks, so acking the batch's last record acks all of it.
  auto ack_span = hub_->tracer.span("amcast", "batch_round", node_->id());
  ack_span.arg("size", members.size());
  ack_span.arg("last_seq", last_seq);
  co_await sim::wait_until(node_->region(acks_mr_).on_write(),
                           [this, last_seq] {
                             return propose_majority_acked(last_seq);
                           });
  if (stale(inc)) co_return;

  for (const MsgUid uid : members) {
    auto it = pending_.find(uid);
    if (it == pending_.end()) continue;
    it->second.propose_acked = true;
    send_proposals(uid);
    maybe_commit(uid);
  }
  // Single-group members commit right here, together: one COMMIT span,
  // one replication write per follower for the whole batch.
  flush_commits();
}

bool Endpoint::propose_majority_acked(std::uint64_t seq) const {
  const auto acks = node_->region(acks_mr_).bytes();
  int count = 1;  // self
  for (int r = 0; r < system_->replicas_per_group(); ++r) {
    if (r == rank_) continue;
    if (rdma::load_pod<std::uint64_t>(acks, static_cast<std::uint64_t>(r) * 8) >=
        seq) {
      ++count;
    }
  }
  return count >= majority();
}

void Endpoint::send_proposals(MsgUid uid) {
  auto it = pending_.find(uid);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  if (dst_count(p.msg.dst) <= 1) return;  // single group: nothing to exchange

  const std::uint32_t my_stripe = system_->stripe_of(group_, rank_);
  for (GroupId h = 0; h < system_->group_count(); ++h) {
    if (h == group_ || !dst_contains(p.msg.dst, h)) continue;
    for (int r = 0; r < system_->replicas_per_group(); ++r) {
      Endpoint& peer = system_->endpoint(h, r);
      ProposalRecord rec;
      rec.seq = ++props_sent_[peer.node().id()];
      rec.uid = uid;
      rec.from_group = group_;
      rec.flags = dst_contains(p.shed_groups, group_) ? 1u : 0u;
      rec.clock = p.local_clock;
      rec.dst = p.msg.dst;
      system_->fabric().write_async(
          node_->id(),
          rdma::RAddr{peer.node().id(), peer.props_mr(),
                      peer.props_slot_offset(my_stripe,
                                             rec.seq)},
          rdma::pod_bytes(rec));
    }
  }
  p.proposals_sent = true;
}

void Endpoint::maybe_commit(MsgUid uid) {
  if (!is_leader() || taking_over_) return;
  auto it = pending_.find(uid);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  if (p.committed || p.commit_queued || !p.proposed_locally ||
      !p.propose_acked || !p.has_msg) {
    return;
  }
  if (static_cast<int>(p.proposals.size()) < dst_count(p.msg.dst)) return;
  commit(uid);
}

// Buffers the commit decision; flush_commits() turns the buffer into a
// contiguous COMMIT span. Callers that can batch several decisions in one
// event (the batch ack round, the proposal drain) flush once at the end.
void Endpoint::commit(MsgUid uid) {
  Pending& p = pending_.at(uid);
  std::uint64_t final_ts = 0;
  for (const auto& [g, clk] : p.proposals) {
    final_ts = std::max(final_ts, pack_ts(clk, g));
  }
  clock_ = std::max(clock_, ts_clock(final_ts));

  ctr_commits_->inc();
  hub_->tracer.instant("amcast", "commit", node_->id(),
                       {{"uid", uid}, {"final_ts", final_ts}});

  // The commit record carries the final shed verdict (any destination
  // group's leader shed it), so followers need no proposal-flag state.
  p.commit_queued = true;
  commit_buf_.push_back(
      QueuedCommit{uid, final_ts, p.shed_groups != 0 ? 1u : 0u});
}

void Endpoint::flush_commits() {
  if (commit_buf_.empty()) return;
  // Deposed (or mid-takeover) with buffered decisions: drop them instead
  // of appending as a non-leader — the current leader re-drives these
  // messages from its own replicated PROPOSE records.
  if (!is_leader() || taking_over_) {
    for (const auto& qc : commit_buf_) {
      auto it = pending_.find(qc.uid);
      if (it != pending_.end()) it->second.commit_queued = false;
    }
    commit_buf_.clear();
    return;
  }
  const std::uint64_t first_seq = append_seq_ + 1;
  const std::size_t count = commit_buf_.size();
  for (std::size_t i = 0; i < count; ++i) {
    const QueuedCommit& qc = commit_buf_[i];
    LogRecord rec;
    rec.seq = ++append_seq_;
    rec.kind = LogRecord::Kind::kCommit;
    rec.uid = qc.uid;
    rec.value = qc.final_ts;
    rec.flags = qc.flags;
    rec.batch = (i == 0) ? static_cast<std::uint32_t>(count) : 0u;
    append_local(rec);
  }
  commit_buf_.clear();
  replicate_span(first_seq, count);
  update_status_page();
}

// Appends to the local ring and applies synchronously (the leader's own
// copy); replication happens separately via replicate_span so a batch of
// consecutive records costs one write per follower.
void Endpoint::append_local(const LogRecord& rec) {
  TaggedLogRecord tagged{epoch_, rec};
  rdma::store_pod(node_->region(log_mr_).bytes(), log_slot_offset(rec.seq),
                  tagged);
  applied_seq_ = std::max(applied_seq_, rec.seq);
  apply_record(rec);
}

// Replicates log records [first_seq, first_seq + count) to all followers
// as contiguous span writes, split only where the ring wraps. A whole
// span lands atomically in one fabric event, and per-record application
// is self-contained, so partial visibility across the wrap split is
// safe.
void Endpoint::replicate_span(std::uint64_t first_seq, std::uint64_t count) {
  if (count == 0) return;
  const std::uint32_t slots = system_->config().log_slots;
  const auto bytes = node_->region(log_mr_).bytes();
  std::uint64_t s = first_seq;
  std::uint64_t left = count;
  while (left > 0) {
    const std::uint64_t idx = s % slots;
    const std::uint64_t run = std::min<std::uint64_t>(left, slots - idx);
    const auto src = bytes.subspan(idx * kLogSlotSize, run * kLogSlotSize);
    for (int r = 0; r < system_->replicas_per_group(); ++r) {
      if (r == rank_) continue;
      Endpoint& peer = system_->endpoint(group_, r);
      system_->fabric().write_async(
          node_->id(),
          rdma::RAddr{peer.node().id(), peer.log_mr(), idx * kLogSlotSize},
          src);
    }
    s += run;
    left -= run;
  }
}

// ---------------------------------------------------------------------
// Log apply (leader locally; followers via log_loop) + delivery.
// ---------------------------------------------------------------------

void Endpoint::apply_record(const LogRecord& rec) {
  switch (rec.kind) {
    case LogRecord::Kind::kPropose: {
      if (already_delivered(rec.uid)) break;
      auto [it, inserted] = pending_.try_emplace(rec.uid);
      Pending& p = it->second;
      p.msg = rec.msg;
      p.has_msg = true;
      p.proposed_locally = true;
      p.local_clock = rec.value;
      p.propose_seq = rec.seq;
      p.proposals[group_] = rec.value;
      if (rec.flags & 1) p.shed_groups |= dst_of(group_);
      clock_ = std::max(clock_, rec.value);
      seen_.erase(rec.uid);
      break;
    }
    case LogRecord::Kind::kCommit: {
      if (already_delivered(rec.uid)) break;
      auto it = pending_.find(rec.uid);
      if (it == pending_.end()) break;  // stale duplicate
      Pending& p = it->second;
      p.committed = true;
      p.final_ts = rec.value;
      p.shed = (rec.flags & 1) != 0;
      clock_ = std::max(clock_, ts_clock(rec.value));
      try_deliver();
      break;
    }
    case LogRecord::Kind::kInvalid:
      break;
  }
  update_status_page();
}

sim::Task<void> Endpoint::log_loop() {
  const std::uint64_t inc = incarnation_;
  auto& region = node_->region(log_mr_);
  const Config& cfg = system_->config();

  auto next_ready = [this, &region] {
    const auto tagged = rdma::load_pod<TaggedLogRecord>(
        region.bytes(), log_slot_offset(applied_seq_ + 1));
    return tagged.epoch == epoch_ && tagged.rec.seq == applied_seq_ + 1;
  };

  while (true) {
    co_await sim::wait_until(region.on_write(), next_ready);
    if (stale(inc)) co_return;
    bool applied_any = false;
    while (next_ready()) {
      const auto tagged = rdma::load_pod<TaggedLogRecord>(
          region.bytes(), log_slot_offset(applied_seq_ + 1));
      applied_seq_ = tagged.rec.seq;
      // The apply cost is charged once per batch (at the head record):
      // batch members share one unmarshal/apply pass, which is the
      // follower half of the batching amortization. Unbatched records
      // are their own head (batch == 1), preserving the seed cost model.
      if (tagged.rec.batch != 0) {
        co_await node_->cpu().use(cfg.follower_proc);
        if (stale(inc)) co_return;
      }
      apply_record(tagged.rec);
      applied_any = true;
    }
    if (applied_any) {
      // Report the applied position to every peer (any of them may be, or
      // become, the leader).
      const std::uint64_t ack = applied_seq_;
      for (int r = 0; r < system_->replicas_per_group(); ++r) {
        if (r == rank_) continue;
        Endpoint& peer = system_->endpoint(group_, r);
        system_->fabric().write_async(
            node_->id(),
            rdma::RAddr{peer.node().id(), peer.acks_mr(),
                        static_cast<std::uint64_t>(rank_) * 8},
            rdma::pod_bytes(ack));
      }
    }
  }
}

sim::Task<void> Endpoint::props_loop() {
  const std::uint64_t inc = incarnation_;
  auto& region = node_->region(props_mr_);
  const Config& cfg = system_->config();
  const std::uint32_t stripes = system_->total_replicas();

  // As in the inbox, `rec.seq > cursor + 1` is accepted so a restarted
  // replica skips past proposals dropped while it was down.
  auto have_new = [this, &region, stripes] {
    for (std::uint32_t s = 0; s < stripes; ++s) {
      const auto rec = rdma::load_pod<ProposalRecord>(
          region.bytes(), props_slot_offset(s, props_next_[s] + 1));
      if (rec.seq >= props_next_[s] + 1) return true;
    }
    return false;
  };

  while (true) {
    co_await sim::wait_until(region.on_write(), have_new);
    if (stale(inc)) co_return;
    for (std::uint32_t s = 0; s < stripes; ++s) {
      while (true) {
        const auto rec = rdma::load_pod<ProposalRecord>(
            region.bytes(), props_slot_offset(s, props_next_[s] + 1));
        if (rec.seq < props_next_[s] + 1) break;
        props_next_[s] = rec.seq;
        co_await node_->cpu().use(cfg.proposal_proc);
        if (stale(inc)) co_return;
        if (already_delivered(rec.uid)) continue;
        Pending& p = pending_[rec.uid];
        p.proposals[rec.from_group] =
            std::max(p.proposals[rec.from_group], rec.clock);
        if (rec.flags & 1) p.shed_groups |= dst_of(rec.from_group);
        if (!p.has_msg) {
          // Remember the destination set so maybe_commit can count groups
          // even before our own PROPOSE lands.
          p.msg.dst = rec.dst;
          p.msg.uid = rec.uid;
        }
        maybe_commit(rec.uid);
      }
    }
    // Commits decided during this drain go out as one COMMIT span.
    flush_commits();
  }
}

void Endpoint::try_deliver() {
  while (true) {
    // Committed, undelivered message with the smallest final timestamp.
    const Pending* best = nullptr;
    MsgUid best_uid = 0;
    for (const auto& [uid, p] : pending_) {
      if (!p.committed) continue;
      if (!best || p.final_ts < best->final_ts) {
        best = &p;
        best_uid = uid;
      }
    }
    if (!best) return;

    // Skeen delivery condition: safe only if no uncommitted message could
    // still receive a smaller final timestamp. A locally proposed,
    // uncommitted message m' has final >= pack(m'.local_clock, 0); any
    // message not yet proposed here will get a proposal > clock_ >=
    // ts_clock(best->final_ts), hence a larger final.
    for (const auto& [uid, p] : pending_) {
      if (p.committed || !p.proposed_locally) continue;
      if (pack_ts(p.local_clock, 0) <= best->final_ts) return;  // blocked
    }

    Delivery d;
    d.uid = best_uid;
    d.tmp = best->final_ts;
    d.dst = best->msg.dst;
    d.payload = best->msg.payload;
    d.payload_len = best->msg.payload_len;
    d.shed = best->shed;
    d.lease = (best->msg.flags & kWireFlagLease) != 0;
    d.epoch = (best->msg.flags & kWireFlagEpoch) != 0;
    d.fast_write = (best->msg.flags & kWireFlagFastWrite) != 0;
    mark_delivered(best_uid);
    pending_.erase(best_uid);
    seen_.erase(best_uid);
    ++delivered_count_;
    ctr_deliveries_->inc();
    hub_->tracer.instant("amcast", "deliver", node_->id(),
                         {{"uid", d.uid}, {"tmp", d.tmp}});
    if (delivery_observer_) delivery_observer_(d);
    ready_.push_back(d);
    ready_notifier_->notify_all();
  }
}

sim::Task<Delivery> Endpoint::next_delivery() {
  const std::uint64_t inc = incarnation_;
  co_await sim::wait_until(*ready_notifier_, [this] { return !ready_.empty(); });
  // A waiter parked across a crash+restart must not steal a delivery from
  // the new incarnation's consumer: return an empty (uid 0) delivery,
  // which callers discard along with their own stale frame.
  if (stale(inc)) co_return Delivery{};
  co_await node_->cpu().use(system_->config().deliver_proc);
  if (stale(inc)) co_return Delivery{};
  Delivery d = ready_.front();
  ready_.pop_front();
  co_return d;
}

sim::Task<std::vector<Delivery>> Endpoint::next_deliveries() {
  const std::uint64_t inc = incarnation_;
  co_await sim::wait_until(*ready_notifier_, [this] { return !ready_.empty(); });
  // Stale-waiter sentinel, as in next_delivery(): an empty span.
  if (stale(inc)) co_return std::vector<Delivery>{};
  co_await node_->cpu().use(system_->config().deliver_proc);
  if (stale(inc)) co_return std::vector<Delivery>{};
  std::vector<Delivery> out(ready_.begin(), ready_.end());
  ready_.clear();
  co_return out;
}

void Endpoint::debug_dump() const {
  std::fprintf(stderr,
               "[amcast g%d r%d] leader=%d epoch=%llu clock=%llu applied=%llu "
               "appended=%llu delivered=%llu seen=%zu pending=%zu\n",
               group_, rank_, leader_, (unsigned long long)epoch_,
               (unsigned long long)clock_, (unsigned long long)applied_seq_,
               (unsigned long long)append_seq_,
               (unsigned long long)delivered_count_, seen_.size(),
               pending_.size());
  for (const auto& [uid, p] : pending_) {
    std::fprintf(stderr,
                 "  uid=%llu dst=%llx has_msg=%d proposed=%d clock=%llu "
                 "acked=%d sent=%d committed=%d final=%llu nprops=%zu\n",
                 (unsigned long long)uid, (unsigned long long)p.msg.dst,
                 p.has_msg, p.proposed_locally,
                 (unsigned long long)p.local_clock, p.propose_acked,
                 p.proposals_sent, p.committed,
                 (unsigned long long)p.final_ts, p.proposals.size());
  }
}

std::optional<Delivery> Endpoint::try_next_delivery() {
  if (ready_.empty()) return std::nullopt;
  Delivery d = ready_.front();
  ready_.pop_front();
  return d;
}

// ---------------------------------------------------------------------
// Failover: heartbeat monitoring, epoch-based takeover.
// ---------------------------------------------------------------------

sim::Task<void> Endpoint::control_loop() {
  const std::uint64_t inc = incarnation_;
  auto& region = node_->region(control_mr_);
  while (true) {
    co_await sim::wait_until(region.on_write(), [this, &region] {
      return rdma::load_pod<ControlMsg>(region.bytes(), 0).serial !=
             control_serial_;
    });
    if (stale(inc)) co_return;
    const auto ctl = rdma::load_pod<ControlMsg>(region.bytes(), 0);
    control_serial_ = ctl.serial;
    if (ctl.epoch > epoch_) {
      epoch_ = ctl.epoch;
      leader_ = ctl.leader_rank;
      hub_->tracer.instant(
          "amcast", "leader_change", node_->id(),
          {{"epoch", ctl.epoch},
           {"leader", static_cast<std::uint64_t>(ctl.leader_rank)}});
      // Discard any log suffix the old leader never majority-replicated;
      // the new leader's records for those positions supersede them.
      applied_seq_ = std::min(applied_seq_, ctl.reset_seq);
      update_status_page();
      // Re-kick the log loop: records tagged with the new epoch may
      // already sit in the ring.
      node_->region(log_mr_).on_write().notify_all();
    }
  }
}

sim::Task<void> Endpoint::heartbeat_loop() {
  const std::uint64_t inc = incarnation_;
  const Config& cfg = system_->config();
  auto& fabric = system_->fabric();
  std::uint64_t last_seen = 0;
  int misses = 0;

  while (true) {
    co_await fabric.simulator().sleep(cfg.heartbeat_interval);
    if (stale(inc)) co_return;
    ++hb_value_;
    rdma::store_pod(node_->region(hb_mr_).bytes(), 0, hb_value_);
    // A replica taking over keeps heartbeating (the loop above) but does
    // not monitor anyone; a leader monitors nobody either.
    if (is_leader() || taking_over_) continue;

    Endpoint& leader = system_->endpoint(group_, leader_);
    std::uint64_t hb = 0;
    std::span<std::byte> buf(reinterpret_cast<std::byte*>(&hb), sizeof(hb));
    // Failure-detector probes ride the control lane: a congested uplink
    // must not turn queuing delay into a false suspicion.
    const auto completion = co_await fabric.read(
        node_->id(), rdma::RAddr{leader.node().id(), leader.hb_mr(), 0}, buf,
        rdma::Lane::kControl);
    if (stale(inc)) co_return;

    bool suspect = false;
    if (!completion.ok()) {
      suspect = true;  // QP error: the paper's RDMA exception path
    } else if (hb == last_seen) {
      if (++misses >= cfg.heartbeat_misses) suspect = true;
    } else {
      last_seen = hb;
      misses = 0;
    }
    if (!suspect) continue;
    hub_->tracer.instant("amcast", "suspect_leader", node_->id(),
                         {{"leader", static_cast<std::uint64_t>(leader_)}});

    last_seen = 0;
    // Deterministic succession: the lowest alive rank leads. Aliveness is
    // probed through the fabric (RDMA QP error = dead), so in a crash-stop
    // model every prober reaches the same answer.
    int first_alive = rank_;
    for (int cand = 0; cand < system_->replicas_per_group(); ++cand) {
      if (cand == rank_) {
        first_alive = cand;
        break;
      }
      Endpoint& c = system_->endpoint(group_, cand);
      std::uint64_t cand_hb = 0;
      std::span<std::byte> cbuf(reinterpret_cast<std::byte*>(&cand_hb),
                                sizeof(cand_hb));
      const auto cc = co_await fabric.read(
          node_->id(), rdma::RAddr{c.node().id(), c.hb_mr(), 0}, cbuf,
          rdma::Lane::kControl);
      if (stale(inc)) co_return;
      if (cc.ok()) {
        first_alive = cand;
        break;
      }
    }
    if (first_alive == rank_) {
      if (!taking_over_) fabric.simulator().spawn(takeover());
      misses = 0;
    } else {
      leader_ = first_alive;
      // Grace period: the new leader's takeover may pause its proposal
      // flow for a while; don't re-suspect it immediately.
      misses = -4 * cfg.heartbeat_misses;
    }
  }
}

sim::Task<void> Endpoint::takeover() {
  const std::uint64_t inc = incarnation_;
  if (taking_over_) co_return;
  taking_over_ = true;
  leader_ = rank_;
  auto& fabric = system_->fabric();
  const int n = system_->replicas_per_group();

  ctr_takeovers_->inc();
  auto takeover_span = hub_->tracer.span("amcast", "takeover", node_->id());
  takeover_span.arg("group", static_cast<std::uint64_t>(group_));

  HSIM_LOG(fabric.simulator(), kInfo,
           "group " << group_ << " replica " << rank_ << " taking over");

  // 1. Gather status pages from peers, in parallel, until self +
  //    responders form a majority (responders are alive, and any majority
  //    intersects the ack-majority of every replicated record in an alive
  //    member). With at most f crash failures, all reads resolving yields
  //    self + responders >= f + 1 = majority.
  struct Gather {
    std::vector<std::pair<int, StatusPage>> responses;
    int resolved = 0;
  };
  auto gather = std::make_shared<Gather>();
  auto gather_done = std::make_shared<sim::Notifier>(fabric.simulator());
  for (int r = 0; r < n; ++r) {
    if (r == rank_) continue;
    fabric.simulator().spawn(
        [](Endpoint& self, int peer_rank, std::shared_ptr<Gather> g,
           std::shared_ptr<sim::Notifier> done) -> sim::Task<void> {
          Endpoint& peer = self.system_->endpoint(self.group_, peer_rank);
          StatusPage sp{};
          std::span<std::byte> buf(reinterpret_cast<std::byte*>(&sp),
                                   sizeof(sp));
          const auto cc = co_await self.system_->fabric().read(
              self.node_->id(),
              rdma::RAddr{peer.node().id(), peer.status_mr(), 0}, buf,
              rdma::Lane::kControl);
          if (cc.ok()) g->responses.emplace_back(peer_rank, sp);
          ++g->resolved;
          done->notify_all();
        }(*this, r, gather, gather_done));
  }
  co_await sim::wait_until(*gather_done,
                           [&gather, n] { return gather->resolved == n - 1; });
  if (stale(inc)) co_return;

  std::vector<StatusPage> statuses;
  statuses.push_back(StatusPage{epoch_, applied_seq_, clock_});
  int best_peer = -1;
  std::uint64_t best_seq = applied_seq_;
  std::uint64_t min_applied = applied_seq_;
  for (const auto& [r, sp] : gather->responses) {
    statuses.push_back(sp);
    min_applied = std::min(min_applied, sp.applied_seq);
    if (sp.applied_seq > best_seq) {
      best_seq = sp.applied_seq;
      best_peer = r;
    }
  }

  // 2. Catch up from the most advanced responder.
  if (best_peer >= 0 && best_seq > applied_seq_) {
    Endpoint& peer = system_->endpoint(group_, best_peer);
    for (std::uint64_t s = applied_seq_ + 1; s <= best_seq; ++s) {
      TaggedLogRecord rec{};
      std::span<std::byte> buf(reinterpret_cast<std::byte*>(&rec), sizeof(rec));
      const auto cc = co_await fabric.read(
          node_->id(),
          rdma::RAddr{peer.node().id(), peer.log_mr(), log_slot_offset(s)},
          buf);
      if (stale(inc)) co_return;
      if (!cc.ok() || rec.rec.seq != s) break;  // peer died or ring moved on
      rdma::store_pod(node_->region(log_mr_).bytes(), log_slot_offset(s),
                      rec);
      applied_seq_ = s;
      apply_record(rec.rec);
    }
  }

  // 3. Start a new epoch and reset every peer to our log position.
  std::uint64_t max_epoch = epoch_;
  std::uint64_t max_clock = clock_;
  for (const auto& sp : statuses) {
    max_epoch = std::max(max_epoch, sp.epoch);
    max_clock = std::max(max_clock, sp.clock);
  }
  epoch_ = max_epoch + 1;
  clock_ = max_clock;
  append_seq_ = applied_seq_;
  update_status_page();

  ControlMsg ctl{epoch_ /* serial: unique per takeover */, epoch_,
                 applied_seq_, rank_, 0};
  for (int r = 0; r < n; ++r) {
    if (r == rank_) continue;
    Endpoint& peer = system_->endpoint(group_, r);
    fabric.write_async(node_->id(),
                       rdma::RAddr{peer.node().id(), peer.control_mr(), 0},
                       rdma::pod_bytes(ctl), rdma::Lane::kControl);
  }

  // 4. Resend the recovered log tail (re-tagged with the new epoch) so
  //    lagging followers converge under the new epoch.
  for (std::uint64_t s = min_applied + 1; s <= applied_seq_; ++s) {
    auto tagged = rdma::load_pod<TaggedLogRecord>(
        node_->region(log_mr_).bytes(), log_slot_offset(s));
    if (tagged.rec.seq != s) continue;
    tagged.epoch = epoch_;
    rdma::store_pod(node_->region(log_mr_).bytes(), log_slot_offset(s), tagged);
    for (int r = 0; r < n; ++r) {
      if (r == rank_) continue;
      Endpoint& peer = system_->endpoint(group_, r);
      fabric.write_async(
          node_->id(),
          rdma::RAddr{peer.node().id(), peer.log_mr(), log_slot_offset(s)},
          rdma::pod_bytes(tagged));
    }
  }

  taking_over_ = false;

  // 5. Re-drive in-flight messages: resend proposals for locally proposed
  //    uncommitted messages (in-flight batches recover member by member —
  //    every batch member is its own log record with its own clock) and
  //    route inbox'd ones through the batcher for re-proposal. Commit
  //    decisions buffered before the takeover belong to the old reign;
  //    drop them so maybe_commit re-decides under the new epoch.
  commit_buf_.clear();
  for (auto& [uid, p] : pending_) p.commit_queued = false;
  // Snapshot first: spawn() starts the coroutine eagerly, and when the
  // majority-ack predicate already holds it runs straight through to
  // maybe_commit/flush_commits, which can erase pending_ entries out
  // from under a live iterator.
  std::vector<MsgUid> redrive;
  for (const auto& [uid, p] : pending_) {
    if (p.proposed_locally && !p.committed) redrive.push_back(uid);
  }
  for (MsgUid uid : redrive) {
    system_->fabric().simulator().spawn(
        [](Endpoint& self, MsgUid u) -> sim::Task<void> {
          const std::uint64_t inc2 = self.incarnation_;
          const auto pit = self.pending_.find(u);
          if (pit == self.pending_.end()) co_return;  // earlier re-drive won
          const std::uint64_t seq = pit->second.propose_seq;
          co_await sim::wait_until(
              self.node_->region(self.acks_mr_).on_write(),
              [&self, seq] { return self.propose_majority_acked(seq); });
          if (self.stale(inc2)) co_return;
          auto it = self.pending_.find(u);
          if (it == self.pending_.end()) co_return;
          it->second.propose_acked = true;
          self.send_proposals(u);
          self.maybe_commit(u);
          self.flush_commits();
        }(*this, uid));
  }
  std::vector<MsgUid> to_propose;
  for (const auto& [uid, msg] : seen_) {
    auto it = pending_.find(uid);
    // A pending entry created only by a remote proposal still needs our
    // local proposal.
    if (it == pending_.end() || !it->second.proposed_locally) {
      to_propose.push_back(uid);
    }
  }
  ctr_reproposals_->inc(to_propose.size());
  for (MsgUid uid : to_propose) {
    enqueue_propose(uid);
  }
}

// ---------------------------------------------------------------------
// Restart: crash-recovery rejoin. Registered memory (inbox/log/acks/
// props/hb/status/control regions) survives the crash; everything in the
// Endpoint object is treated as volatile except the per-client delivered
// sets, which stand in for the application's stable storage (the SMR
// layer's surviving object store implies them).
// ---------------------------------------------------------------------

void Endpoint::restart() {
  node_->restart();
  ++incarnation_;
  taking_over_ = false;
  pending_.clear();
  seen_.clear();
  ready_.clear();
  propose_queue_.clear();
  commit_buf_.clear();
  clock_ = 0;
  applied_seq_ = 0;
  append_seq_ = 0;

  const Config& cfg = system_->config();

  // A restarted leader sizes itself against the current fabric state, not
  // a pre-crash stall count.
  effective_window_ = cfg.admission_window;
  admission_clean_streak_ = 0;
  admission_last_stalls_ = system_->fabric().credit_stalls(node_->id());

  // Rebuild producer cursors from the surviving rings: the highest
  // ring_seq present per producer. Gaps (writes dropped while we were
  // down) are skipped by the `>=` cursor tolerance in the loops; the
  // skipped messages were handled by the surviving majority.
  {
    const auto bytes = node_->region(inbox_mr_).bytes();
    for (std::uint32_t c = 0; c < cfg.max_clients; ++c) {
      std::uint64_t max_seq = 0;
      for (std::uint32_t s = 0; s < cfg.inbox_slots_per_client; ++s) {
        const std::uint64_t off =
            (static_cast<std::uint64_t>(c) * cfg.inbox_slots_per_client + s) *
            kInboxSlotSize;
        const auto uid = rdma::load_pod<MsgUid>(bytes, off);
        if (uid == 0 || uid_client(uid) != c) continue;
        max_seq = std::max(max_seq, rdma::load_pod<std::uint64_t>(
                                        bytes, off + sizeof(MsgUid)));
      }
      inbox_next_[c] = max_seq;
    }
  }
  {
    const auto bytes = node_->region(props_mr_).bytes();
    const std::uint32_t stripes =
        static_cast<std::uint32_t>(system_->total_replicas());
    for (std::uint32_t s = 0; s < stripes; ++s) {
      std::uint64_t max_seq = 0;
      for (std::uint32_t i = 0; i < cfg.proposal_slots; ++i) {
        const auto rec = rdma::load_pod<ProposalRecord>(
            bytes, (static_cast<std::uint64_t>(s) * cfg.proposal_slots + i) *
                       kPropSlotSize);
        max_seq = std::max(max_seq, rec.seq);
      }
      props_next_[s] = max_seq;
    }
  }

  // Don't re-process a control message that predates the crash.
  control_serial_ =
      rdma::load_pod<ControlMsg>(node_->region(control_mr_).bytes(), 0).serial;

  system_->fabric().simulator().spawn(rejoin());
}

sim::Task<void> Endpoint::rejoin() {
  const std::uint64_t inc = incarnation_;
  auto& fabric = system_->fabric();
  const int n = system_->replicas_per_group();

  hub_->tracer.instant("amcast", "rejoin", node_->id(),
                       {{"group", static_cast<std::uint64_t>(group_)}});
  HSIM_LOG(fabric.simulator(), kInfo,
           "group " << group_ << " replica " << rank_ << " rejoining");

  // 1. Replay the surviving local log from the start of the ring.
  //    already_delivered() suppresses re-delivery; committed-but-
  //    undelivered messages re-enter the ready queue. (If the ring has
  //    wrapped the replay stops at the wrap point; the SMR layer's state
  //    transfer then covers the missing history.)
  {
    const auto bytes = node_->region(log_mr_).bytes();
    for (std::uint64_t s = 1;; ++s) {
      const auto tagged =
          rdma::load_pod<TaggedLogRecord>(bytes, log_slot_offset(s));
      if (tagged.rec.seq != s) break;
      applied_seq_ = s;
      apply_record(tagged.rec);
    }
  }

  // 2. Adopt the group's current epoch, leader and clock from peers, and
  //    find the most advanced log to catch up from.
  std::uint64_t best_seq = applied_seq_;
  int best_peer = -1;
  std::uint64_t ctl_epoch = 0;
  int ctl_leader = leader_;
  for (int r = 0; r < n; ++r) {
    if (r == rank_) continue;
    Endpoint& peer = system_->endpoint(group_, r);
    StatusPage sp{};
    std::span<std::byte> sbuf(reinterpret_cast<std::byte*>(&sp), sizeof(sp));
    const auto sc = co_await fabric.read(
        node_->id(), rdma::RAddr{peer.node().id(), peer.status_mr(), 0}, sbuf,
        rdma::Lane::kControl);
    if (stale(inc)) co_return;
    if (sc.ok()) {
      epoch_ = std::max(epoch_, sp.epoch);
      clock_ = std::max(clock_, sp.clock);
      if (sp.applied_seq > best_seq) {
        best_seq = sp.applied_seq;
        best_peer = r;
      }
    }
    ControlMsg cm{};
    std::span<std::byte> cbuf(reinterpret_cast<std::byte*>(&cm), sizeof(cm));
    const auto cc = co_await fabric.read(
        node_->id(), rdma::RAddr{peer.node().id(), peer.control_mr(), 0},
        cbuf, rdma::Lane::kControl);
    if (stale(inc)) co_return;
    if (cc.ok() && cm.epoch > ctl_epoch) {
      ctl_epoch = cm.epoch;
      ctl_leader = cm.leader_rank;
    }
  }
  if (ctl_epoch > 0) {
    leader_ = ctl_leader;
    epoch_ = std::max(epoch_, ctl_epoch);
  }

  // 3. Catch up the log tail from the most advanced peer.
  if (best_peer >= 0) {
    Endpoint& peer = system_->endpoint(group_, best_peer);
    for (std::uint64_t s = applied_seq_ + 1; s <= best_seq; ++s) {
      TaggedLogRecord rec{};
      std::span<std::byte> buf(reinterpret_cast<std::byte*>(&rec),
                               sizeof(rec));
      const auto cc = co_await fabric.read(
          node_->id(),
          rdma::RAddr{peer.node().id(), peer.log_mr(), log_slot_offset(s)},
          buf);
      if (stale(inc)) co_return;
      if (!cc.ok() || rec.rec.seq != s) break;  // peer died or ring moved on
      rdma::store_pod(node_->region(log_mr_).bytes(), log_slot_offset(s), rec);
      applied_seq_ = s;
      apply_record(rec.rec);
    }
  }

  append_seq_ = applied_seq_;
  update_status_page();

  // 4. Publish our applied position so the leader's majority counting
  //    sees us again.
  {
    const std::uint64_t ack = applied_seq_;
    for (int r = 0; r < n; ++r) {
      if (r == rank_) continue;
      Endpoint& peer = system_->endpoint(group_, r);
      fabric.write_async(node_->id(),
                         rdma::RAddr{peer.node().id(), peer.acks_mr(),
                                     static_cast<std::uint64_t>(rank_) * 8},
                         rdma::pod_bytes(ack));
    }
  }

  // 5. If we come back as the leader (no takeover happened — quick
  //    restart or failover disabled), recover per-receiver proposal
  //    counters from the receivers' surviving stripe rings and re-drive
  //    in-flight messages, mirroring takeover() step 5.
  if (is_leader()) {
    const std::uint32_t my_stripe = system_->stripe_of(group_, rank_);
    const Config& cfg = system_->config();
    for (GroupId h = 0; h < system_->group_count(); ++h) {
      if (h == group_) continue;
      for (int r = 0; r < system_->replicas_per_group(); ++r) {
        Endpoint& peer = system_->endpoint(h, r);
        std::vector<std::byte> stripe(
            static_cast<std::size_t>(cfg.proposal_slots) * kPropSlotSize);
        const auto cc = co_await fabric.read(
            node_->id(),
            rdma::RAddr{peer.node().id(), peer.props_mr(),
                        peer.props_slot_offset(my_stripe, 0)},
            stripe);
        if (stale(inc)) co_return;
        if (!cc.ok()) continue;
        std::uint64_t max_seq = 0;
        for (std::uint32_t i = 0; i < cfg.proposal_slots; ++i) {
          const auto rec = rdma::load_pod<ProposalRecord>(
              stripe, static_cast<std::uint64_t>(i) * kPropSlotSize);
          max_seq = std::max(max_seq, rec.seq);
        }
        props_sent_[peer.node().id()] = max_seq;
      }
    }
    for (auto& [uid, p] : pending_) {
      if (p.proposed_locally && !p.committed) {
        fabric.simulator().spawn(
            [](Endpoint& self, MsgUid u) -> sim::Task<void> {
              const std::uint64_t inc2 = self.incarnation_;
              const std::uint64_t seq = self.pending_.at(u).propose_seq;
              co_await sim::wait_until(
                  self.node_->region(self.acks_mr_).on_write(),
                  [&self, seq] { return self.propose_majority_acked(seq); });
              if (self.stale(inc2)) co_return;
              auto it = self.pending_.find(u);
              if (it == self.pending_.end()) co_return;
              it->second.propose_acked = true;
              self.send_proposals(u);
              self.maybe_commit(u);
              self.flush_commits();
            }(*this, uid));
      }
    }
  }

  // 6. Resume the protocol loops under the new incarnation.
  start();
}

}  // namespace heron::amcast
