// TPC-C request wire formats (client -> replicas, inside the multicast
// payload) and the transaction mix.
#pragma once

#include <array>
#include <cstdint>

#include "tpcc/schema.hpp"

namespace heron::tpcc {

enum Kind : std::uint32_t {
  kNewOrder = 1,
  kPayment = 2,
  kOrderStatus = 3,
  kDelivery = 4,
  kStockLevel = 5,
};

/// Stable transaction-kind name for reports and traces.
constexpr const char* kind_name(std::uint32_t kind) {
  switch (kind) {
    case kNewOrder: return "new_order";
    case kPayment: return "payment";
    case kOrderStatus: return "order_status";
    case kDelivery: return "delivery";
    case kStockLevel: return "stock_level";
    default: return "unknown";
  }
}

struct NewOrderItem {
  std::uint32_t i_id = 0;
  std::uint32_t supply_w_id = 0;
  std::uint32_t quantity = 0;
};

struct NewOrderReq {
  std::uint32_t w_id = 0;
  std::uint32_t d_id = 0;
  std::uint32_t c_id = 0;
  std::uint32_t ol_cnt = 0;
  std::array<NewOrderItem, kMaxOrderLines> items{};
};

struct PaymentReq {
  std::uint32_t w_id = 0;
  std::uint32_t d_id = 0;
  std::uint32_t c_w_id = 0;
  std::uint32_t c_d_id = 0;
  std::uint32_t c_id = 0;
  double amount = 0;
};

struct OrderStatusReq {
  std::uint32_t w_id = 0;
  std::uint32_t d_id = 0;
  std::uint32_t c_id = 0;
};

struct DeliveryReq {
  std::uint32_t w_id = 0;
  std::uint32_t d_id = 0;  // district processed by this request
  std::uint32_t carrier_id = 0;
};

struct StockLevelReq {
  std::uint32_t w_id = 0;
  std::uint32_t d_id = 0;
  std::int32_t threshold = 0;
};

static_assert(sizeof(NewOrderReq) <= 200);
static_assert(std::is_trivially_copyable_v<NewOrderReq>);
static_assert(std::is_trivially_copyable_v<PaymentReq>);
static_assert(std::is_trivially_copyable_v<OrderStatusReq>);
static_assert(std::is_trivially_copyable_v<DeliveryReq>);
static_assert(std::is_trivially_copyable_v<StockLevelReq>);

}  // namespace heron::tpcc
