// TPC-C schema: fixed-size row types and object-id encoding.
//
// Row sizes follow the paper's prototype (§V-E2): a full warehouse is
// ~137.69 MB, of which the serialized tables (Stock, Customer) are
// ~105.3 MB and the rest ~32.39 MB. Stock and Customer are flagged
// `serialized` in the object store: accesses pay the (de)serialization
// cost model and state transfer ships them without receiver-side
// deserialization (§IV-A, §V-E2).
#pragma once

#include <array>
#include <cstdint>
#include <cstring>

#include "core/types.hpp"

namespace heron::tpcc {

using core::Oid;

// --- table ids encoded into the top bits of an Oid ---------------------

enum class Table : std::uint8_t {
  kWarehouse = 1,
  kDistrict = 2,
  kCustomer = 3,
  kItem = 4,
  kStock = 5,
  kOrder = 6,
  kNewOrder = 7,
  kOrderLine = 8,
  kHistory = 9,
  kCustomerIndex = 10,  // per-customer last-order pointer (for OrderStatus)
};

// Oid layout: [ table:8 | warehouse:12 | district:8 | key:36 ]
constexpr Oid make_oid(Table t, std::uint32_t w, std::uint32_t d,
                       std::uint64_t key) {
  return (static_cast<Oid>(t) << 56) | (static_cast<Oid>(w & 0xfff) << 44) |
         (static_cast<Oid>(d & 0xff) << 36) | (key & 0xfffffffffULL);
}
constexpr Table oid_table(Oid oid) {
  return static_cast<Table>(oid >> 56);
}
constexpr std::uint32_t oid_warehouse(Oid oid) {
  return static_cast<std::uint32_t>((oid >> 44) & 0xfff);
}
constexpr std::uint32_t oid_district(Oid oid) {
  return static_cast<std::uint32_t>((oid >> 36) & 0xff);
}
constexpr std::uint64_t oid_key(Oid oid) { return oid & 0xfffffffffULL; }

// Order-line key packs (order id, line number).
constexpr std::uint64_t ol_key(std::uint64_t o_id, std::uint32_t ol_number) {
  return o_id * 16 + ol_number;
}

// --- row types ----------------------------------------------------------

constexpr int kDistrictsPerWarehouse = 10;
constexpr int kMaxOrderLines = 15;

/// Warehouse row. Replicated in every partition, never updated (§IV-A).
struct WarehouseRow {
  std::uint32_t w_id = 0;
  double tax = 0;
  double ytd = 0;
  std::array<char, 32> name{};
  std::array<char, 64> address{};
};

/// District row (one of 10 per warehouse).
struct DistrictRow {
  std::uint32_t d_id = 0;
  std::uint32_t w_id = 0;
  double tax = 0;
  double ytd = 0;
  std::uint64_t next_o_id = 1;     // next order number to assign
  std::uint64_t next_del_o_id = 1; // oldest undelivered order (Delivery)
  std::array<char, 32> name{};
  std::array<char, 64> address{};
};

/// Customer row: serialized table (~1.3 KB / row, 30k rows = ~40 MB/WH).
struct CustomerRow {
  std::uint32_t c_id = 0;
  std::uint32_t d_id = 0;
  std::uint32_t w_id = 0;
  std::uint32_t payment_cnt = 0;
  std::uint32_t delivery_cnt = 0;
  std::uint32_t credit_ok = 1;
  double balance = -10.0;
  double ytd_payment = 10.0;
  double discount = 0;
  std::array<char, 64> name{};
  std::array<char, 1200> data{};  // credit history blob
};

/// Item row. Replicated in every partition, read-only.
struct ItemRow {
  std::uint32_t i_id = 0;
  std::uint32_t im_id = 0;
  double price = 0;
  std::array<char, 32> name{};
  std::array<char, 56> data{};
};

/// Stock row: serialized table (~640 B / row, 100k rows = ~65 MB/WH).
struct StockRow {
  std::uint32_t i_id = 0;
  std::uint32_t w_id = 0;
  std::int32_t quantity = 0;
  std::uint32_t ytd = 0;
  std::uint32_t order_cnt = 0;
  std::uint32_t remote_cnt = 0;
  std::array<char, 24 * kDistrictsPerWarehouse> dist{};  // s_dist_01..10
  std::array<char, 360> data{};
};

struct OrderRow {
  std::uint64_t o_id = 0;
  std::uint32_t c_id = 0;
  std::uint32_t d_id = 0;
  std::uint32_t w_id = 0;
  std::uint32_t carrier_id = 0;  // 0 = undelivered
  std::uint32_t ol_cnt = 0;
  std::uint32_t all_local = 1;
  std::int64_t entry_d = 0;
};

struct NewOrderRow {
  std::uint64_t o_id = 0;
  std::uint32_t d_id = 0;
  std::uint32_t w_id = 0;
  std::uint32_t delivered = 0;
};

struct OrderLineRow {
  std::uint64_t o_id = 0;
  std::uint32_t ol_number = 0;
  std::uint32_t i_id = 0;
  std::uint32_t supply_w_id = 0;
  std::uint32_t quantity = 0;
  double amount = 0;
  std::int64_t delivery_d = 0;
  std::array<char, 24> dist_info{};
};

struct HistoryRow {
  std::uint32_t c_id = 0;
  std::uint32_t c_d_id = 0;
  std::uint32_t c_w_id = 0;
  std::uint32_t d_id = 0;
  std::uint32_t w_id = 0;
  double amount = 0;
  std::int64_t date = 0;
  std::array<char, 24> data{};
};

/// Per-customer pointer to their most recent order (OrderStatus support).
struct CustomerIndexRow {
  std::uint64_t last_o_id = 0;
};

static_assert(std::is_trivially_copyable_v<WarehouseRow>);
static_assert(std::is_trivially_copyable_v<DistrictRow>);
static_assert(std::is_trivially_copyable_v<CustomerRow>);
static_assert(std::is_trivially_copyable_v<ItemRow>);
static_assert(std::is_trivially_copyable_v<StockRow>);
static_assert(std::is_trivially_copyable_v<OrderRow>);
static_assert(std::is_trivially_copyable_v<NewOrderRow>);
static_assert(std::is_trivially_copyable_v<OrderLineRow>);
static_assert(std::is_trivially_copyable_v<HistoryRow>);
static_assert(std::is_trivially_copyable_v<CustomerIndexRow>);

/// Scale knobs. scale=1.0 matches the spec (100k items/stock, 3000
/// customers per district); throughput benches run reduced scales with
/// unchanged row sizes so per-request costs stay representative.
struct TpccScale {
  double factor = 0.05;
  std::uint32_t initial_orders_per_district = 30;

  [[nodiscard]] std::uint32_t items() const {
    return std::max<std::uint32_t>(100, static_cast<std::uint32_t>(100'000 * factor));
  }
  [[nodiscard]] std::uint32_t customers_per_district() const {
    return std::max<std::uint32_t>(30, static_cast<std::uint32_t>(3'000 * factor));
  }

  /// Object-region bytes needed per replica for `own_warehouses` local
  /// warehouses (with headroom for runtime row creation).
  [[nodiscard]] std::size_t region_bytes(double headroom = 1.8) const {
    const std::size_t stock =
        static_cast<std::size_t>(items()) * (24 + 2 * sizeof(StockRow));
    const std::size_t cust = static_cast<std::size_t>(customers_per_district()) *
                             kDistrictsPerWarehouse *
                             (24 + 2 * sizeof(CustomerRow) + 24 +
                              2 * sizeof(CustomerIndexRow));
    const std::size_t item =
        static_cast<std::size_t>(items()) * (24 + 2 * sizeof(ItemRow));
    const std::size_t orders =
        static_cast<std::size_t>(initial_orders_per_district) *
        kDistrictsPerWarehouse *
        (24 + 2 * sizeof(OrderRow) + 24 + 2 * sizeof(NewOrderRow) +
         10 * (24 + 2 * sizeof(OrderLineRow)));
    const std::size_t fixed = (24 + 2 * sizeof(WarehouseRow)) +
                              kDistrictsPerWarehouse *
                                  (24 + 2 * sizeof(DistrictRow));
    return static_cast<std::size_t>(
        static_cast<double>(stock + cust + item + orders + fixed) * headroom);
  }
};

}  // namespace heron::tpcc
