// TPC-C on Heron (§IV-A of the paper).
//
// One warehouse per partition. Warehouse and Item are replicated in all
// partitions (never updated by the workload, per the paper); Stock and
// Customer are stored serialized; all other tables are warehouse-local
// plain rows. Multi-partition requests arise from NewOrder lines supplied
// by a remote warehouse and Payment for a remote customer; every involved
// partition executes the request and updates only its local rows.
#pragma once

#include <cstdint>

#include "core/app.hpp"
#include "tpcc/requests.hpp"
#include "tpcc/schema.hpp"

namespace heron::tpcc {

class TpccApp : public core::Application {
 public:
  TpccApp(int partitions, TpccScale scale, std::uint64_t seed = 7);

  [[nodiscard]] core::GroupId partition_of(core::Oid oid) const override;
  [[nodiscard]] std::vector<core::Oid> read_set(
      const core::Request& r, core::GroupId at) const override;
  core::Reply execute(const core::Request& r, core::ExecContext& ctx) override;
  void bootstrap(core::GroupId partition, core::ObjectStore& store) override;

  [[nodiscard]] const TpccScale& scale() const { return scale_; }

 private:
  core::Reply exec_new_order(const NewOrderReq& req, const core::Request& r,
                             core::ExecContext& ctx);
  core::Reply exec_payment(const PaymentReq& req, const core::Request& r,
                           core::ExecContext& ctx);
  core::Reply exec_order_status(const OrderStatusReq& req,
                                core::ExecContext& ctx);
  core::Reply exec_delivery(const DeliveryReq& req, const core::Request& r,
                            core::ExecContext& ctx);
  core::Reply exec_stock_level(const StockLevelReq& req,
                               core::ExecContext& ctx);

  /// Charges the serialized-table access cost for `bytes`.
  static void charge_serialized(core::ExecContext& ctx, std::size_t bytes);

  int partitions_;
  TpccScale scale_;
  std::uint64_t seed_;
};

/// Typed local read through the store (used for rows that are always
/// local: districts, orders, replicated tables, ...).
template <typename T>
T load_row(const core::ObjectStore& store, core::Oid oid) {
  auto [tmp, bytes] = store.get(oid);
  T out;
  std::memcpy(&out, bytes.data(), sizeof(T));
  return out;
}

}  // namespace heron::tpcc
