#include "tpcc/app.hpp"

#include <algorithm>
#include <set>

#include "sim/random.hpp"

namespace heron::tpcc {

namespace {

// Cost model: the paper charges serialized tables a per-byte
// (de)serialization cost (HeronConfig::serialize_ns_per_byte covers the
// runtime-visible reads/writes; direct local reads charge here).
constexpr double kSerializeNsPerByte = 1.0;
constexpr sim::Nanos kBaseTxnCost = sim::us(1.5);
constexpr sim::Nanos kRowTouchCost = 150;  // hash lookup + header handling

template <typename T>
T from_ctx(core::ExecContext& ctx, core::Oid oid) {
  T out;
  auto v = ctx.value(oid);
  std::memcpy(&out, v.data(), sizeof(T));
  return out;
}

template <typename T>
T decode(const core::Request& r) {
  T out;
  std::memcpy(&out, r.payload.data(), sizeof(T));
  return out;
}

}  // namespace

TpccApp::TpccApp(int partitions, TpccScale scale, std::uint64_t seed)
    : partitions_(partitions), scale_(scale), seed_(seed) {}

core::GroupId TpccApp::partition_of(core::Oid oid) const {
  return static_cast<core::GroupId>(oid_warehouse(oid) %
                                    static_cast<std::uint32_t>(partitions_));
}

void TpccApp::charge_serialized(core::ExecContext& ctx, std::size_t bytes) {
  ctx.charge(static_cast<sim::Nanos>(static_cast<double>(bytes) *
                                     kSerializeNsPerByte) +
             kRowTouchCost);
}

std::vector<core::Oid> TpccApp::read_set(const core::Request& r,
                                         core::GroupId at) const {
  switch (r.header.kind) {
    case kNewOrder: {
      const auto req = decode<NewOrderReq>(r);
      std::vector<core::Oid> out;
      const bool home = partition_of(make_oid(Table::kDistrict, req.w_id, 0,
                                              0)) == at;
      for (std::uint32_t i = 0; i < req.ol_cnt; ++i) {
        const auto& item = req.items[i];
        const core::Oid stock =
            make_oid(Table::kStock, item.supply_w_id, 0, item.i_id);
        // The home partition reads every stock row (for amounts and
        // dist_info); a supply partition reads only its own rows.
        if (home || partition_of(stock) == at) out.push_back(stock);
      }
      return out;
    }
    case kPayment: {
      const auto req = decode<PaymentReq>(r);
      return {make_oid(Table::kCustomer, req.c_w_id, req.c_d_id, req.c_id)};
    }
    default:
      return {};  // single-partition, resolved against the local store
  }
}

core::Reply TpccApp::execute(const core::Request& r, core::ExecContext& ctx) {
  ctx.charge(kBaseTxnCost);
  switch (r.header.kind) {
    case kNewOrder:
      return exec_new_order(decode<NewOrderReq>(r), r, ctx);
    case kPayment:
      return exec_payment(decode<PaymentReq>(r), r, ctx);
    case kOrderStatus:
      return exec_order_status(decode<OrderStatusReq>(r), ctx);
    case kDelivery:
      return exec_delivery(decode<DeliveryReq>(r), r, ctx);
    case kStockLevel:
      return exec_stock_level(decode<StockLevelReq>(r), ctx);
    default:
      return core::Reply{.status = 1};
  }
}

core::Reply TpccApp::exec_new_order(const NewOrderReq& req,
                                    const core::Request& r,
                                    core::ExecContext& ctx) {
  const auto& store = ctx.local_store();
  const bool home =
      partition_of(make_oid(Table::kDistrict, req.w_id, 0, 0)) ==
      ctx.my_partition();

  // Every involved partition updates its own stock rows (§III-A: local
  // writes only; the paper's "partial execution in some partitions").
  for (std::uint32_t i = 0; i < req.ol_cnt; ++i) {
    const auto& it = req.items[i];
    const core::Oid soid = make_oid(Table::kStock, it.supply_w_id, 0, it.i_id);
    if (partition_of(soid) != ctx.my_partition()) continue;
    auto stock = from_ctx<StockRow>(ctx, soid);
    if (stock.quantity >= static_cast<std::int32_t>(it.quantity) + 10) {
      stock.quantity -= static_cast<std::int32_t>(it.quantity);
    } else {
      stock.quantity += 91 - static_cast<std::int32_t>(it.quantity);
    }
    stock.ytd += it.quantity;
    stock.order_cnt += 1;
    if (it.supply_w_id != req.w_id) stock.remote_cnt += 1;
    ctx.write_as(soid, stock);  // runtime charges the re-serialization
  }

  if (!home) return core::Reply{};  // supply partitions are done

  // Home partition: order bookkeeping.
  const core::Oid doid = make_oid(Table::kDistrict, req.w_id, req.d_id, 0);
  auto district = load_row<DistrictRow>(store, doid);
  const std::uint64_t o_id = district.next_o_id;
  district.next_o_id += 1;
  ctx.write_as(doid, district);

  const core::Oid coid =
      make_oid(Table::kCustomer, req.w_id, req.d_id, req.c_id);
  const auto customer = load_row<CustomerRow>(store, coid);
  charge_serialized(ctx, sizeof(CustomerRow));

  const auto warehouse = load_row<WarehouseRow>(
      store, make_oid(Table::kWarehouse, req.w_id, 0, 0));

  OrderRow order;
  order.o_id = o_id;
  order.c_id = req.c_id;
  order.d_id = req.d_id;
  order.w_id = req.w_id;
  order.ol_cnt = req.ol_cnt;
  order.entry_d = static_cast<std::int64_t>(r.tmp);
  double total = 0;
  for (std::uint32_t i = 0; i < req.ol_cnt; ++i) {
    const auto& it = req.items[i];
    if (it.supply_w_id != req.w_id) order.all_local = 0;

    const auto item = load_row<ItemRow>(
        store, make_oid(Table::kItem, static_cast<std::uint32_t>(ctx.my_partition()),
                        0, it.i_id));
    const auto stock = from_ctx<StockRow>(
        ctx, make_oid(Table::kStock, it.supply_w_id, 0, it.i_id));

    OrderLineRow line;
    line.o_id = o_id;
    line.ol_number = i + 1;
    line.i_id = it.i_id;
    line.supply_w_id = it.supply_w_id;
    line.quantity = it.quantity;
    line.amount = it.quantity * item.price;
    std::memcpy(line.dist_info.data(),
                stock.dist.data() + (req.d_id % kDistrictsPerWarehouse) * 24,
                24);
    total += line.amount;
    ctx.create(make_oid(Table::kOrderLine, req.w_id, req.d_id,
                        ol_key(o_id, line.ol_number)),
               std::as_bytes(std::span(&line, 1)));
  }
  ctx.create(make_oid(Table::kOrder, req.w_id, req.d_id, o_id),
             std::as_bytes(std::span(&order, 1)));
  NewOrderRow no{o_id, req.d_id, req.w_id, 0};
  ctx.create(make_oid(Table::kNewOrder, req.w_id, req.d_id, o_id),
             std::as_bytes(std::span(&no, 1)));
  CustomerIndexRow idx{o_id};
  ctx.write_as(make_oid(Table::kCustomerIndex, req.w_id, req.d_id, req.c_id),
               idx);

  total *= (1.0 - customer.discount) * (1.0 + warehouse.tax + district.tax);
  core::Reply reply;
  reply.payload.resize(sizeof(total) + sizeof(o_id));
  std::memcpy(reply.payload.data(), &total, sizeof(total));
  std::memcpy(reply.payload.data() + sizeof(total), &o_id, sizeof(o_id));
  return reply;
}

core::Reply TpccApp::exec_payment(const PaymentReq& req,
                                  const core::Request& r,
                                  core::ExecContext& ctx) {
  const auto& store = ctx.local_store();
  const bool home_here =
      partition_of(make_oid(Table::kDistrict, req.w_id, 0, 0)) ==
      ctx.my_partition();
  const core::Oid coid =
      make_oid(Table::kCustomer, req.c_w_id, req.c_d_id, req.c_id);
  const bool customer_here = partition_of(coid) == ctx.my_partition();

  // Reading the customer row (possibly remote) is part of the request at
  // the home partition too (credit check / reply data); the runtime
  // charges its deserialization.
  auto customer = from_ctx<CustomerRow>(ctx, coid);

  if (home_here) {
    const core::Oid doid = make_oid(Table::kDistrict, req.w_id, req.d_id, 0);
    auto district = load_row<DistrictRow>(store, doid);
    district.ytd += req.amount;
    ctx.write_as(doid, district);
  }
  if (customer_here) {
    customer.balance -= req.amount;
    customer.ytd_payment += req.amount;
    customer.payment_cnt += 1;
    ctx.write_as(coid, customer);

    HistoryRow hist;
    hist.c_id = req.c_id;
    hist.c_d_id = req.c_d_id;
    hist.c_w_id = req.c_w_id;
    hist.d_id = req.d_id;
    hist.w_id = req.w_id;
    hist.amount = req.amount;
    hist.date = static_cast<std::int64_t>(r.tmp);
    // r.tmp is unique per request, so it doubles as the history key.
    ctx.create(make_oid(Table::kHistory, req.c_w_id, req.c_d_id,
                        r.tmp & 0xfffffffffULL),
               std::as_bytes(std::span(&hist, 1)));
  }

  core::Reply reply;
  reply.payload.resize(sizeof(double));
  std::memcpy(reply.payload.data(), &customer.balance, sizeof(double));
  return reply;
}

core::Reply TpccApp::exec_order_status(const OrderStatusReq& req,
                                       core::ExecContext& ctx) {
  const auto& store = ctx.local_store();
  const auto customer = load_row<CustomerRow>(
      store, make_oid(Table::kCustomer, req.w_id, req.d_id, req.c_id));
  charge_serialized(ctx, sizeof(CustomerRow));

  const auto idx = load_row<CustomerIndexRow>(
      store, make_oid(Table::kCustomerIndex, req.w_id, req.d_id, req.c_id));

  double last_total = 0;
  if (idx.last_o_id != 0) {
    const auto order = load_row<OrderRow>(
        store, make_oid(Table::kOrder, req.w_id, req.d_id, idx.last_o_id));
    ctx.charge(kRowTouchCost);
    for (std::uint32_t l = 1; l <= order.ol_cnt; ++l) {
      const auto line = load_row<OrderLineRow>(
          store, make_oid(Table::kOrderLine, req.w_id, req.d_id,
                          ol_key(idx.last_o_id, l)));
      last_total += line.amount;
      ctx.charge(kRowTouchCost);
    }
  }
  core::Reply reply;
  reply.payload.resize(2 * sizeof(double));
  std::memcpy(reply.payload.data(), &customer.balance, sizeof(double));
  std::memcpy(reply.payload.data() + sizeof(double), &last_total,
              sizeof(double));
  return reply;
}

core::Reply TpccApp::exec_delivery(const DeliveryReq& req,
                                   const core::Request& r,
                                   core::ExecContext& ctx) {
  const auto& store = ctx.local_store();
  const core::Oid doid = make_oid(Table::kDistrict, req.w_id, req.d_id, 0);
  auto district = load_row<DistrictRow>(store, doid);
  std::uint64_t delivered_o_id = 0;

  if (district.next_del_o_id < district.next_o_id) {
    const std::uint64_t o_id = district.next_del_o_id;
    district.next_del_o_id += 1;
    ctx.write_as(doid, district);

    const core::Oid ooid = make_oid(Table::kOrder, req.w_id, req.d_id, o_id);
    auto order = load_row<OrderRow>(store, ooid);
    order.carrier_id = req.carrier_id;
    ctx.write_as(ooid, order);
    ctx.charge(kRowTouchCost);

    double total = 0;
    for (std::uint32_t l = 1; l <= order.ol_cnt; ++l) {
      const core::Oid loid = make_oid(Table::kOrderLine, req.w_id, req.d_id,
                                      ol_key(o_id, l));
      auto line = load_row<OrderLineRow>(store, loid);
      line.delivery_d = static_cast<std::int64_t>(r.tmp);
      total += line.amount;
      ctx.write_as(loid, line);
      ctx.charge(kRowTouchCost);
    }

    const core::Oid coid =
        make_oid(Table::kCustomer, req.w_id, req.d_id, order.c_id);
    auto customer = load_row<CustomerRow>(store, coid);
    charge_serialized(ctx, sizeof(CustomerRow));
    customer.balance += total;
    customer.delivery_cnt += 1;
    ctx.write_as(coid, customer);
    charge_serialized(ctx, sizeof(CustomerRow));

    const core::Oid nooid =
        make_oid(Table::kNewOrder, req.w_id, req.d_id, o_id);
    if (store.exists(nooid)) {
      auto no = load_row<NewOrderRow>(store, nooid);
      no.delivered = 1;
      ctx.write_as(nooid, no);
    }
    delivered_o_id = o_id;
  }

  core::Reply reply;
  reply.payload.resize(sizeof(delivered_o_id));
  std::memcpy(reply.payload.data(), &delivered_o_id, sizeof(delivered_o_id));
  return reply;
}

core::Reply TpccApp::exec_stock_level(const StockLevelReq& req,
                                      core::ExecContext& ctx) {
  const auto& store = ctx.local_store();
  const auto district = load_row<DistrictRow>(
      store, make_oid(Table::kDistrict, req.w_id, req.d_id, 0));

  // Scan the last 20 orders' lines; count distinct items whose stock is
  // below the threshold. Expensive due to the serialized Stock table
  // (the paper's explanation for StockLevel's latency, §V-D2).
  const std::uint64_t from =
      district.next_o_id > 20 ? district.next_o_id - 20 : 1;
  std::set<std::uint32_t> low;
  for (std::uint64_t o = from; o < district.next_o_id; ++o) {
    const core::Oid ooid = make_oid(Table::kOrder, req.w_id, req.d_id, o);
    if (!store.exists(ooid)) continue;
    const auto order = load_row<OrderRow>(store, ooid);
    ctx.charge(kRowTouchCost);
    for (std::uint32_t l = 1; l <= order.ol_cnt; ++l) {
      const auto line = load_row<OrderLineRow>(
          store, make_oid(Table::kOrderLine, req.w_id, req.d_id,
                          ol_key(o, l)));
      ctx.charge(kRowTouchCost);
      const core::Oid soid =
          make_oid(Table::kStock, req.w_id, 0, line.i_id);
      const auto stock = load_row<StockRow>(store, soid);
      charge_serialized(ctx, sizeof(StockRow));
      if (stock.quantity < req.threshold) low.insert(line.i_id);
    }
  }

  const std::uint64_t count = low.size();
  core::Reply reply;
  reply.payload.resize(sizeof(count));
  std::memcpy(reply.payload.data(), &count, sizeof(count));
  return reply;
}

void TpccApp::bootstrap(core::GroupId partition, core::ObjectStore& store) {
  sim::Rng rng(seed_ ^ (0xabcdULL + static_cast<std::uint64_t>(partition)));
  const auto w = static_cast<std::uint32_t>(partition);

  // Warehouse rows: replicated everywhere, read-only (paper §IV-A).
  for (int p = 0; p < partitions_; ++p) {
    WarehouseRow wh;
    wh.w_id = static_cast<std::uint32_t>(p);
    wh.tax = 0.05 + 0.01 * (p % 5);
    store.create(make_oid(Table::kWarehouse, static_cast<std::uint32_t>(p), 0, 0),
                 std::as_bytes(std::span(&wh, 1)));
  }
  // Item table: replicated copy under this partition's id.
  for (std::uint32_t i = 1; i <= scale_.items(); ++i) {
    ItemRow item;
    item.i_id = i;
    item.im_id = i % 10'000;
    item.price = 1.0 + static_cast<double>(i % 100);
    store.create(make_oid(Table::kItem, w, 0, i),
                 std::as_bytes(std::span(&item, 1)));
  }
  // Stock: serialized table.
  for (std::uint32_t i = 1; i <= scale_.items(); ++i) {
    StockRow stock;
    stock.i_id = i;
    stock.w_id = w;
    stock.quantity = static_cast<std::int32_t>(10 + rng.bounded(91));
    store.create(make_oid(Table::kStock, w, 0, i),
                 std::as_bytes(std::span(&stock, 1)), /*serialized=*/true);
  }
  // Districts, customers (serialized), customer index, initial orders.
  for (std::uint32_t d = 1; d <= kDistrictsPerWarehouse; ++d) {
    DistrictRow district;
    district.d_id = d;
    district.w_id = w;
    district.tax = 0.04 + 0.01 * (d % 4);

    for (std::uint32_t c = 1; c <= scale_.customers_per_district(); ++c) {
      CustomerRow customer;
      customer.c_id = c;
      customer.d_id = d;
      customer.w_id = w;
      customer.discount = 0.01 * static_cast<double>(c % 30);
      store.create(make_oid(Table::kCustomer, w, d, c),
                   std::as_bytes(std::span(&customer, 1)),
                   /*serialized=*/true);
      CustomerIndexRow idx;
      store.create(make_oid(Table::kCustomerIndex, w, d, c),
                   std::as_bytes(std::span(&idx, 1)));
    }

    // Initial orders: ~2/3 delivered, the rest pending (spec clause 4.3.3
    // shape at reduced volume).
    const std::uint32_t norders = scale_.initial_orders_per_district;
    for (std::uint64_t o = 1; o <= norders; ++o) {
      OrderRow order;
      order.o_id = o;
      order.c_id = static_cast<std::uint32_t>(
          1 + rng.bounded(scale_.customers_per_district()));
      order.d_id = d;
      order.w_id = w;
      order.ol_cnt = static_cast<std::uint32_t>(5 + rng.bounded(11));
      const bool delivered = o <= (norders * 2) / 3;
      order.carrier_id =
          delivered ? static_cast<std::uint32_t>(1 + rng.bounded(10)) : 0;
      store.create(make_oid(Table::kOrder, w, d, o),
                   std::as_bytes(std::span(&order, 1)));
      for (std::uint32_t l = 1; l <= order.ol_cnt; ++l) {
        OrderLineRow line;
        line.o_id = o;
        line.ol_number = l;
        line.i_id = static_cast<std::uint32_t>(1 + rng.bounded(scale_.items()));
        line.supply_w_id = w;
        line.quantity = 5;
        line.amount = delivered ? 0.0 : 1.0 + static_cast<double>(rng.bounded(9999)) / 100.0;
        store.create(make_oid(Table::kOrderLine, w, d, ol_key(o, l)),
                     std::as_bytes(std::span(&line, 1)));
      }
      if (!delivered) {
        NewOrderRow no{o, d, w, 0};
        store.create(make_oid(Table::kNewOrder, w, d, o),
                     std::as_bytes(std::span(&no, 1)));
      }
      CustomerIndexRow idx{o};
      store.set(make_oid(Table::kCustomerIndex, w, d, order.c_id),
                std::as_bytes(std::span(&idx, 1)), 0);
    }
    district.next_o_id = norders + 1;
    district.next_del_o_id = (norders * 2) / 3 + 1;
    store.create(make_oid(Table::kDistrict, w, d, 0),
                 std::as_bytes(std::span(&district, 1)));
  }
}

}  // namespace heron::tpcc
