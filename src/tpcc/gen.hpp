// TPC-C workload generator: the standard transaction mix (45% NewOrder,
// 43% Payment, 4% OrderStatus, 4% Delivery, 4% StockLevel), remote-access
// probabilities per the spec (1% remote supply per order line, 15% remote
// Payment customer), plus the paper's experiment variants: local-only
// TPC-C (Fig. 4, 4th set) and NewOrder pinned to exactly N partitions
// (Fig. 6 top bars).
#pragma once

#include <cstdint>
#include <vector>

#include "amcast/types.hpp"
#include "sim/random.hpp"
#include "tpcc/requests.hpp"

namespace heron::tpcc {

struct WorkloadConfig {
  int partitions = 1;
  TpccScale scale{};
  bool local_only = false;        // restrict every request to one partition
  bool new_order_only = false;    // Fig. 6 bottom bar: NewOrder stream
  int force_partitions = 0;       // >0: all-NewOrder spanning exactly N parts
  double remote_item_prob = 0.01;
  double remote_customer_prob = 0.15;
};

struct GeneratedRequest {
  std::uint32_t kind = 0;
  amcast::DstMask dst = 0;
  std::vector<std::byte> payload;

  template <typename T>
  void set(const T& req) {
    payload.resize(sizeof(T));
    std::memcpy(payload.data(), &req, sizeof(T));
  }
};

class WorkloadGen {
 public:
  WorkloadGen(WorkloadConfig cfg, std::uint32_t home_warehouse,
              std::uint64_t seed)
      : cfg_(cfg), home_(home_warehouse), rng_(seed) {}

  [[nodiscard]] std::uint32_t home() const { return home_; }

  GeneratedRequest next() {
    if (cfg_.force_partitions > 0) return new_order(cfg_.force_partitions);
    if (cfg_.new_order_only) return new_order(0);
    const auto roll = rng_.bounded(100);
    if (roll < 45) return new_order(0);
    if (roll < 88) return payment();
    if (roll < 92) return order_status();
    if (roll < 96) return delivery();
    return stock_level();
  }

  GeneratedRequest new_order(int span_partitions) {
    NewOrderReq req;
    req.w_id = home_;
    req.d_id = pick_district();
    req.c_id = pick_customer();
    req.ol_cnt = static_cast<std::uint32_t>(5 + rng_.bounded(11));

    std::vector<std::uint32_t> span;  // distinct partitions to hit
    if (span_partitions > 1) {
      span.push_back(home_);
      for (int p = 0; static_cast<int>(span.size()) < span_partitions; ++p) {
        const auto cand = static_cast<std::uint32_t>(
            (home_ + 1 + p) % static_cast<std::uint32_t>(cfg_.partitions));
        if (cand != home_) span.push_back(cand);
      }
      req.ol_cnt = std::max<std::uint32_t>(req.ol_cnt,
                                           static_cast<std::uint32_t>(span_partitions));
    }

    amcast::DstMask dst = amcast::dst_of(static_cast<amcast::GroupId>(home_));
    for (std::uint32_t i = 0; i < req.ol_cnt; ++i) {
      auto& it = req.items[i];
      it.i_id = pick_item();
      it.quantity = static_cast<std::uint32_t>(1 + rng_.bounded(10));
      it.supply_w_id = home_;
      if (!span.empty()) {
        it.supply_w_id = span[i % span.size()];
      } else if (!cfg_.local_only && cfg_.partitions > 1 &&
                 rng_.chance(cfg_.remote_item_prob)) {
        it.supply_w_id = pick_other_warehouse();
      }
      dst |= amcast::dst_of(static_cast<amcast::GroupId>(it.supply_w_id));
    }

    GeneratedRequest out;
    out.kind = kNewOrder;
    out.dst = dst;
    out.set(req);
    return out;
  }

  GeneratedRequest payment() {
    PaymentReq req;
    req.w_id = home_;
    req.d_id = pick_district();
    req.c_w_id = home_;
    req.c_d_id = req.d_id;
    if (!cfg_.local_only && cfg_.partitions > 1 &&
        rng_.chance(cfg_.remote_customer_prob)) {
      req.c_w_id = pick_other_warehouse();
      req.c_d_id = pick_district();
    }
    req.c_id = pick_customer();
    req.amount = 1.0 + static_cast<double>(rng_.bounded(500000)) / 100.0;

    GeneratedRequest out;
    out.kind = kPayment;
    out.dst = amcast::dst_of(static_cast<amcast::GroupId>(home_)) |
              amcast::dst_of(static_cast<amcast::GroupId>(req.c_w_id));
    out.set(req);
    return out;
  }

  GeneratedRequest order_status() {
    OrderStatusReq req{home_, pick_district(), pick_customer()};
    GeneratedRequest out;
    out.kind = kOrderStatus;
    out.dst = amcast::dst_of(static_cast<amcast::GroupId>(home_));
    out.set(req);
    return out;
  }

  GeneratedRequest delivery() {
    DeliveryReq req{home_, pick_district(),
                    static_cast<std::uint32_t>(1 + rng_.bounded(10))};
    GeneratedRequest out;
    out.kind = kDelivery;
    out.dst = amcast::dst_of(static_cast<amcast::GroupId>(home_));
    out.set(req);
    return out;
  }

  GeneratedRequest stock_level() {
    StockLevelReq req{home_, pick_district(),
                      static_cast<std::int32_t>(10 + rng_.bounded(11))};
    GeneratedRequest out;
    out.kind = kStockLevel;
    out.dst = amcast::dst_of(static_cast<amcast::GroupId>(home_));
    out.set(req);
    return out;
  }

 private:
  [[nodiscard]] std::uint32_t pick_district() {
    return static_cast<std::uint32_t>(1 +
                                      rng_.bounded(kDistrictsPerWarehouse));
  }
  [[nodiscard]] std::uint32_t pick_customer() {
    // NURand(1023, ...) shape per spec clause 2.1.6, scaled to range.
    return static_cast<std::uint32_t>(rng_.nurand(
        1023, 1, static_cast<std::int64_t>(cfg_.scale.customers_per_district()),
        259));
  }
  [[nodiscard]] std::uint32_t pick_item() {
    return static_cast<std::uint32_t>(
        rng_.nurand(8191, 1, static_cast<std::int64_t>(cfg_.scale.items()),
                    7911 % static_cast<std::int64_t>(cfg_.scale.items())));
  }
  [[nodiscard]] std::uint32_t pick_other_warehouse() {
    const auto other = static_cast<std::uint32_t>(
        rng_.bounded(static_cast<std::uint64_t>(cfg_.partitions - 1)));
    return other >= home_ ? other + 1 : other;
  }

  WorkloadConfig cfg_;
  std::uint32_t home_;
  sim::Rng rng_;
};

}  // namespace heron::tpcc
