// Simulator-kernel telemetry: periodic samples of event throughput and
// event-queue depth, so scale benches can watch the kernel itself (is the
// queue bloating? how many events per virtual second is this workload?)
// without instrumenting the hot loop. Sampling rides the cancelable timer
// pool: one pending timer regardless of period, safely disarmed when the
// sampler stops or dies.
#pragma once

#include <cstdint>

#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "telemetry/registry.hpp"

namespace heron::telemetry {

class KernelStats {
 public:
  KernelStats(sim::Simulator& sim, MetricsRegistry& metrics,
              sim::Nanos period = sim::us(100))
      : sim_(&sim),
        period_(period <= 0 ? sim::us(100) : period),
        events_(&metrics.counter("sim", "events_executed")),
        rate_(&metrics.gauge("sim", "events_per_vsec")),
        depth_(&metrics.gauge("sim", "pending_events")),
        depth_hist_(&metrics.histogram("sim", "queue_depth", "",
                                       depth_buckets())) {}

  KernelStats(const KernelStats&) = delete;
  KernelStats& operator=(const KernelStats&) = delete;
  ~KernelStats() { stop(); }

  /// Begins periodic sampling from the current virtual time.
  void start() {
    if (running_) return;
    running_ = true;
    last_events_ = sim_->events_executed();
    arm();
  }

  /// Stops sampling and disarms the pending timer.
  void stop() {
    running_ = false;
    sim_->cancel_timer(timer_);
  }

 private:
  static std::vector<std::int64_t> depth_buckets() {
    // Queue-depth buckets: 1 .. ~1M, quadrupling.
    std::vector<std::int64_t> b;
    for (std::int64_t v = 1; v <= 4'194'304; v *= 4) b.push_back(v);
    return b;
  }

  void arm() {
    timer_ = sim_->schedule_timer_at(sim_->now() + period_, [this] {
      sample();
      if (running_) arm();
    });
  }

  void sample() {
    const std::uint64_t total = sim_->events_executed();
    const std::uint64_t delta = total - last_events_;
    last_events_ = total;
    events_->inc(delta);
    // Events per *virtual* second over the last period.
    rate_->set(static_cast<std::int64_t>(
        static_cast<double>(delta) *
        (static_cast<double>(sim::kNanosPerSec) /
         static_cast<double>(period_))));
    const auto depth = static_cast<std::int64_t>(sim_->pending_events());
    depth_->set(depth);
    depth_hist_->observe(depth);
  }

  sim::Simulator* sim_;
  sim::Nanos period_;
  Counter* events_;
  Gauge* rate_;
  Gauge* depth_;
  Histogram* depth_hist_;
  sim::Simulator::TimerToken timer_{};
  std::uint64_t last_events_ = 0;
  bool running_ = false;
};

}  // namespace heron::telemetry
