#include "telemetry/json.hpp"

#include <cstdio>

namespace heron::telemetry {

void JsonWriter::pre_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_items_.empty()) {
    if (has_items_.back()) out_.push_back(',');
    has_items_.back() = true;
  }
}

void JsonWriter::append_escaped(std::string_view s) {
  out_.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_.push_back(c);
        }
    }
  }
  out_.push_back('"');
}

JsonWriter& JsonWriter::begin_object() {
  pre_value();
  out_.push_back('{');
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  has_items_.pop_back();
  out_.push_back('}');
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  pre_value();
  out_.push_back('[');
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  has_items_.pop_back();
  out_.push_back(']');
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  pre_value();
  append_escaped(k);
  out_.push_back(':');
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  pre_value();
  append_escaped(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  pre_value();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  pre_value();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  pre_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  pre_value();
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value_fixed(double v, int decimals) {
  pre_value();
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  out_ += buf;
  return *this;
}

}  // namespace heron::telemetry
