// The per-fabric telemetry hub: one metrics registry plus one tracer.
//
// Every simulated component reaches its hub through the rdma::Fabric it
// is attached to (all layers already hold a fabric reference), so no
// extra plumbing is needed to instrument a new subsystem. Both parts are
// disabled by default and cost a single branch per call site until
// enabled.
#pragma once

#include <cstdint>

#include "sim/simulator.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/trace.hpp"

namespace heron::telemetry {

class Hub {
 public:
  /// tid used for captured log lines and other fabric-global events.
  static constexpr std::int64_t kGlobalTid = -1;

  explicit Hub(sim::Simulator& sim) : tracer(sim), sim_(&sim) {
    tracer.set_tid_name(kGlobalTid, "global");
  }
  ~Hub() { release_logs(); }
  Hub(const Hub&) = delete;
  Hub& operator=(const Hub&) = delete;

  MetricsRegistry metrics;
  Tracer tracer;

  void enable_all() {
    metrics.enable();
    tracer.enable();
  }

  /// Routes sim::log_line output into the trace as instant events (one
  /// per line, on the global tid) in addition to normal sink behaviour
  /// being replaced. release_logs() (or destruction) restores the default
  /// sink. Only one hub should capture logs at a time.
  void capture_logs();
  void release_logs();

 private:
  sim::Simulator* sim_;
  bool capturing_ = false;
};

}  // namespace heron::telemetry
