// Metrics registry: named counters, gauges and fixed-bucket histograms,
// keyed by (subsystem, name, label) where the label identifies a node,
// partition or replica (e.g. "g0.r1").
//
// Handles are registered once (construction time) and held by pointer at
// the instrumentation site; recording is a single branch on the
// registry-wide enabled flag plus an add, so disabled telemetry costs
// near nothing on the hot path. Snapshots serialize deterministically
// (std::map key order).
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "telemetry/json.hpp"

namespace heron::telemetry {

class MetricsRegistry;

class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    if (*enabled_) value_ += n;
  }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(const bool* enabled) : enabled_(enabled) {}
  const bool* enabled_;
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(std::int64_t v) {
    if (*enabled_) value_ = v;
  }
  void add(std::int64_t d) {
    if (*enabled_) value_ += d;
  }
  [[nodiscard]] std::int64_t value() const { return value_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const bool* enabled) : enabled_(enabled) {}
  const bool* enabled_;
  std::int64_t value_ = 0;
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds;
/// an implicit +inf bucket catches the rest.
class Histogram {
 public:
  void observe(std::int64_t v) {
    if (!*enabled_) return;
    std::size_t b = 0;
    while (b < bounds_.size() && v > bounds_[b]) ++b;
    ++counts_[b];
    ++count_;
    sum_ += v;
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  /// Drops every recorded sample, keeping the bucket bounds. Benches call
  /// this (via Fabric::reset_stats) between warmup and measurement so the
  /// reported distribution covers only the measured window.
  void reset() {
    std::fill(counts_.begin(), counts_.end(), std::uint64_t{0});
    count_ = 0;
    sum_ = 0;
    min_ = std::numeric_limits<std::int64_t>::max();
    max_ = std::numeric_limits<std::int64_t>::min();
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::int64_t sum() const { return sum_; }
  [[nodiscard]] std::int64_t min() const { return count_ ? min_ : 0; }
  [[nodiscard]] std::int64_t max() const { return count_ ? max_ : 0; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  [[nodiscard]] const std::vector<std::int64_t>& bounds() const {
    return bounds_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const {
    return counts_;
  }

 private:
  friend class MetricsRegistry;
  Histogram(const bool* enabled, std::vector<std::int64_t> bounds)
      : enabled_(enabled), bounds_(std::move(bounds)) {
    counts_.assign(bounds_.size() + 1, 0);
  }
  const bool* enabled_;
  std::vector<std::int64_t> bounds_;
  std::vector<std::uint64_t> counts_;  // bounds_.size() + 1 (last = +inf)
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = std::numeric_limits<std::int64_t>::max();
  std::int64_t max_ = std::numeric_limits<std::int64_t>::min();
};

/// Default latency bucket bounds (ns): 0.25us .. ~134ms, doubling.
std::vector<std::int64_t> latency_buckets_ns();

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void enable(bool on = true) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Registers (or finds) a metric. Pointers stay valid for the registry's
  /// lifetime; repeated calls with the same key return the same object.
  Counter& counter(std::string subsystem, std::string name,
                   std::string label = "");
  Gauge& gauge(std::string subsystem, std::string name,
               std::string label = "");
  Histogram& histogram(std::string subsystem, std::string name,
                       std::string label = "",
                       std::vector<std::int64_t> bounds = latency_buckets_ns());

  /// Zeroes every metric's value (bucket layout is kept). Used at the
  /// start of a measurement window.
  void reset_values();

  /// Deterministic snapshot: {"counters":[...],"gauges":[...],
  /// "histograms":[...]}, each sorted by (subsystem, name, label).
  void write_json(JsonWriter& w) const;
  [[nodiscard]] std::string to_json() const;

 private:
  using Key = std::tuple<std::string, std::string, std::string>;

  bool enabled_ = false;
  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace heron::telemetry
