#include "telemetry/registry.hpp"

namespace heron::telemetry {

std::vector<std::int64_t> latency_buckets_ns() {
  std::vector<std::int64_t> out;
  for (std::int64_t b = 250; b <= 250ll << 19; b *= 2) out.push_back(b);
  return out;
}

Counter& MetricsRegistry::counter(std::string subsystem, std::string name,
                                  std::string label) {
  auto& slot = counters_[{std::move(subsystem), std::move(name),
                          std::move(label)}];
  if (!slot) slot.reset(new Counter(&enabled_));
  return *slot;
}

Gauge& MetricsRegistry::gauge(std::string subsystem, std::string name,
                              std::string label) {
  auto& slot =
      gauges_[{std::move(subsystem), std::move(name), std::move(label)}];
  if (!slot) slot.reset(new Gauge(&enabled_));
  return *slot;
}

Histogram& MetricsRegistry::histogram(std::string subsystem, std::string name,
                                      std::string label,
                                      std::vector<std::int64_t> bounds) {
  auto& slot =
      histograms_[{std::move(subsystem), std::move(name), std::move(label)}];
  if (!slot) slot.reset(new Histogram(&enabled_, std::move(bounds)));
  return *slot;
}

void MetricsRegistry::reset_values() {
  for (auto& [k, c] : counters_) c->value_ = 0;
  for (auto& [k, g] : gauges_) g->value_ = 0;
  for (auto& [k, h] : histograms_) {
    h->counts_.assign(h->counts_.size(), 0);
    h->count_ = 0;
    h->sum_ = 0;
    h->min_ = std::numeric_limits<std::int64_t>::max();
    h->max_ = std::numeric_limits<std::int64_t>::min();
  }
}

namespace {

void write_key_fields(JsonWriter& w, const MetricsRegistry* /*unused*/,
                      const std::tuple<std::string, std::string, std::string>& k) {
  w.kv("subsystem", std::string_view(std::get<0>(k)));
  w.kv("name", std::string_view(std::get<1>(k)));
  w.kv("label", std::string_view(std::get<2>(k)));
}

}  // namespace

void MetricsRegistry::write_json(JsonWriter& w) const {
  w.begin_object();
  w.key("counters").begin_array();
  for (const auto& [k, c] : counters_) {
    w.begin_object();
    write_key_fields(w, this, k);
    w.kv("value", c->value());
    w.end_object();
  }
  w.end_array();
  w.key("gauges").begin_array();
  for (const auto& [k, g] : gauges_) {
    w.begin_object();
    write_key_fields(w, this, k);
    w.kv("value", g->value());
    w.end_object();
  }
  w.end_array();
  w.key("histograms").begin_array();
  for (const auto& [k, h] : histograms_) {
    w.begin_object();
    write_key_fields(w, this, k);
    w.kv("count", h->count());
    w.kv("sum", h->sum());
    w.kv("min", h->min());
    w.kv("max", h->max());
    w.kv("mean", h->mean());
    w.key("buckets").begin_array();
    for (std::size_t b = 0; b < h->counts().size(); ++b) {
      w.begin_object();
      if (b < h->bounds().size()) {
        w.kv("le", h->bounds()[b]);
      } else {
        w.kv("le", "inf");
      }
      w.kv("count", h->counts()[b]);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::string MetricsRegistry::to_json() const {
  JsonWriter w;
  write_json(w);
  return w.take();
}

}  // namespace heron::telemetry
