// Minimal streaming JSON writer used by the telemetry exporters.
//
// No external dependencies; emits deterministic output (map-ordered
// callers + fixed float formatting) so that same-seed runs produce
// byte-identical trace and report files.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace heron::telemetry {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object key; must be followed by a value or container opener.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  /// Shortest-round-trip-ish formatting ("%.10g").
  JsonWriter& value(double v);
  /// Fixed-point formatting ("%.<decimals>f"); use where exactness of the
  /// textual form matters (trace timestamps).
  JsonWriter& value_fixed(double v, int decimals);

  template <typename V>
  JsonWriter& kv(std::string_view k, V v) {
    key(k);
    return value(v);
  }

  [[nodiscard]] const std::string& str() const { return out_; }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  void pre_value();
  void append_escaped(std::string_view s);

  std::string out_;
  std::vector<bool> has_items_;  // per open container
  bool after_key_ = false;
};

}  // namespace heron::telemetry
