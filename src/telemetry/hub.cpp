#include "telemetry/hub.hpp"

#include "sim/log.hpp"

namespace heron::telemetry {

void Hub::capture_logs() {
  if (capturing_) return;
  capturing_ = true;
  sim::set_log_sink([this](sim::Nanos /*now*/, const std::string& msg) {
    // The tracer stamps the current virtual time itself; log_line is
    // always called at emit time, so the two agree.
    tracer.instant_str("log", "log", kGlobalTid, "line", msg);
  });
}

void Hub::release_logs() {
  if (!capturing_) return;
  capturing_ = false;
  sim::set_log_sink({});
}

}  // namespace heron::telemetry
