#include "telemetry/trace.hpp"

#include <cstdio>

namespace heron::telemetry {

void TraceSpan::arg(const char* key, std::uint64_t value) {
  if (!tracer_ || !*alive_ || tracer_->epoch_ != epoch_) return;
  tracer_->events_[index_].args.push_back(Arg{key, value});
}

void TraceSpan::finish() {
  if (!tracer_) return;
  if (*alive_ && tracer_->epoch_ == epoch_) {
    Tracer::Event& ev = tracer_->events_[index_];
    if (ev.end == Tracer::kOpen) ev.end = tracer_->sim_->now();
  }
  tracer_ = nullptr;
}

void TraceSpan::finish_at(sim::Nanos end) {
  if (!tracer_) return;
  if (*alive_ && tracer_->epoch_ == epoch_) {
    Tracer::Event& ev = tracer_->events_[index_];
    if (ev.end == Tracer::kOpen) ev.end = end;
  }
  tracer_ = nullptr;
}

TraceSpan Tracer::span(const char* cat, const char* name, std::int64_t tid) {
  if (!enabled_) return {};
  if (events_.size() >= capacity_) {
    ++dropped_;
    return {};
  }
  events_.push_back(Event{cat, name, tid, sim_->now(), kOpen, {}, {}, {}});
  return TraceSpan{this, alive_, events_.size() - 1, epoch_};
}

void Tracer::instant(const char* cat, const char* name, std::int64_t tid,
                     std::initializer_list<Arg> args) {
  if (!enabled_) return;
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(
      Event{cat, name, tid, sim_->now(), kInstant, std::vector<Arg>(args),
            {}, {}});
}

void Tracer::instant_str(const char* cat, const char* name, std::int64_t tid,
                         const char* key, std::string text) {
  if (!enabled_) return;
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(Event{cat, name, tid, sim_->now(), kInstant, {}, key,
                          std::move(text)});
}

void Tracer::clear() {
  events_.clear();
  dropped_ = 0;
  ++epoch_;
}

void Tracer::write_chrome_json(JsonWriter& w) const {
  w.begin_array();
  for (const auto& [tid, name] : tid_names_) {
    w.begin_object();
    w.kv("name", "thread_name");
    w.kv("ph", "M");
    w.kv("pid", 0);
    w.kv("tid", tid);
    w.key("args").begin_object();
    w.kv("name", std::string_view(name));
    w.end_object();
    w.end_object();
  }
  for (const auto& ev : events_) {
    if (ev.end == kOpen) continue;  // span never finished; skip
    w.begin_object();
    w.kv("name", ev.name);
    w.kv("cat", ev.cat);
    if (ev.end == kInstant) {
      w.kv("ph", "i");
      w.kv("s", "t");
    } else {
      w.kv("ph", "X");
    }
    // Chrome expects microseconds; 3 decimals keep full ns precision.
    w.key("ts").value_fixed(static_cast<double>(ev.begin) / 1000.0, 3);
    if (ev.end != kInstant) {
      w.key("dur").value_fixed(static_cast<double>(ev.end - ev.begin) / 1000.0,
                               3);
    }
    w.kv("pid", 0);
    w.kv("tid", ev.tid);
    if (!ev.args.empty() || !ev.str_key.empty()) {
      w.key("args").begin_object();
      for (const Arg& a : ev.args) w.kv(a.key, a.value);
      if (!ev.str_key.empty()) {
        w.kv(std::string_view(ev.str_key), std::string_view(ev.str_value));
      }
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
}

std::string Tracer::chrome_json() const {
  JsonWriter w;
  write_chrome_json(w);
  std::string out = w.take();
  out.push_back('\n');
  return out;
}

bool Tracer::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string json = chrome_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace heron::telemetry
