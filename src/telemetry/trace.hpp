// Span-based tracing on virtual time.
//
// TraceSpan is an RAII handle: it records the begin timestamp when the
// tracer hands it out and the end timestamp when it is finished (or
// destroyed — safe inside coroutine frames, which destroy locals when the
// coroutine completes). Events buffer in memory, keyed by a `tid` (the
// simulated node id), and export as a Chrome `trace_event` JSON array
// loadable in chrome://tracing or https://ui.perfetto.dev.
//
// Disabled tracing costs one branch per span/instant call. Export is
// deterministic: virtual timestamps only, stable ordering, fixed float
// formatting — same seed, byte-identical file.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "telemetry/json.hpp"

namespace heron::telemetry {

class Tracer;

/// One key/value argument attached to a span or instant event. Values are
/// unsigned integers (uids, byte counts, sequence numbers, timestamps).
struct Arg {
  const char* key;
  std::uint64_t value;
};

class TraceSpan {
 public:
  TraceSpan() = default;
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  TraceSpan(TraceSpan&& o) noexcept { steal(o); }
  TraceSpan& operator=(TraceSpan&& o) noexcept {
    if (this != &o) {
      finish();
      steal(o);
    }
    return *this;
  }
  ~TraceSpan() { finish(); }

  /// Attaches a key/value argument (no-op on an inert span).
  void arg(const char* key, std::uint64_t value);

  /// Stamps the end timestamp now; idempotent. The destructor calls this.
  void finish();

  /// Stamps an explicit end timestamp (may lie in the virtual future, e.g.
  /// the computed arrival of a fire-and-forget write).
  void finish_at(sim::Nanos end);

  /// True when this span records into a live tracer.
  explicit operator bool() const { return tracer_ != nullptr; }

 private:
  friend class Tracer;
  TraceSpan(Tracer* tracer, std::shared_ptr<const bool> alive,
            std::size_t index, std::uint64_t epoch)
      : tracer_(tracer), alive_(std::move(alive)), index_(index),
        epoch_(epoch) {}
  void steal(TraceSpan& o) {
    tracer_ = o.tracer_;
    alive_ = std::move(o.alive_);
    index_ = o.index_;
    epoch_ = o.epoch_;
    o.tracer_ = nullptr;
  }

  // Open spans can outlive their tracer: coroutine frames are destroyed
  // by the simulator, which outlives the fabric (and thus the hub) in the
  // usual declaration order. `alive_` keeps the liveness flag valid so
  // such a late finish() degrades to a no-op instead of touching freed
  // memory.
  Tracer* tracer_ = nullptr;
  std::shared_ptr<const bool> alive_;
  std::size_t index_ = 0;
  std::uint64_t epoch_ = 0;
};

class Tracer {
 public:
  explicit Tracer(sim::Simulator& sim) : sim_(&sim) {}
  ~Tracer() { *alive_ = false; }
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void enable(bool on = true) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Caps the event buffer; events past the cap are counted as dropped.
  void set_capacity(std::size_t max_events) { capacity_ = max_events; }

  /// Opens a span at the current virtual time. `cat`/`name` must be
  /// string literals (stored by pointer). Returns an inert span when
  /// tracing is disabled or the buffer is full.
  [[nodiscard]] TraceSpan span(const char* cat, const char* name,
                               std::int64_t tid);

  /// Records a zero-duration instant event.
  void instant(const char* cat, const char* name, std::int64_t tid,
               std::initializer_list<Arg> args = {});

  /// Instant event carrying one string payload (log-line capture).
  void instant_str(const char* cat, const char* name, std::int64_t tid,
                   const char* key, std::string text);

  /// Names a tid lane in the viewer (emitted as "M" metadata events).
  /// Later calls for the same tid replace the earlier name.
  void set_tid_name(std::int64_t tid, std::string name) {
    tid_names_[tid] = std::move(name);
  }

  /// Drops all buffered events. Spans still open across a clear() detach
  /// harmlessly (epoch guard).
  void clear();

  [[nodiscard]] std::size_t event_count() const { return events_.size(); }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  /// Chrome trace_event JSON array. Unfinished spans are skipped.
  void write_chrome_json(JsonWriter& w) const;
  [[nodiscard]] std::string chrome_json() const;
  /// Writes chrome_json() to `path`; returns false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  friend class TraceSpan;

  struct Event {
    const char* cat;
    const char* name;
    std::int64_t tid;
    sim::Nanos begin;
    sim::Nanos end;  // -1: open span; -2: instant
    std::vector<Arg> args;
    std::string str_key;  // non-empty: one extra string arg
    std::string str_value;
  };

  static constexpr sim::Nanos kOpen = -1;
  static constexpr sim::Nanos kInstant = -2;

  sim::Simulator* sim_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  bool enabled_ = false;
  std::size_t capacity_ = 4u << 20;
  std::uint64_t epoch_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<Event> events_;
  std::map<std::int64_t, std::string> tid_names_;  // sorted => stable export
};

}  // namespace heron::telemetry
