// Lazy coroutine task type used by every simulated process.
//
// Task<T> is a lazily-started coroutine with symmetric-transfer
// continuation chaining: `co_await child()` suspends the parent, runs the
// child to completion (possibly across many virtual-time suspensions) and
// resumes the parent with the child's result. Exceptions propagate through
// awaits like ordinary calls.
//
// Ownership: the Task object owns the coroutine frame. Awaiting a
// temporary Task keeps the frame alive for the duration of the await
// (the temporary lives until the end of the full expression). Root tasks
// are owned by the Simulator (see Simulator::spawn).
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

namespace heron::sim {

template <typename T>
class Task;

namespace detail {

template <typename Promise>
struct FinalAwaiter {
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) noexcept {
    // Transfer control back to whoever awaited us; if nobody did (root
    // task), park at the final suspend point until the owner destroys us.
    auto cont = h.promise().continuation;
    return cont ? cont : std::noop_coroutine();
  }
  void await_resume() const noexcept {}
};

struct PromiseBase {
  std::coroutine_handle<> continuation{};
  std::exception_ptr exception{};
  // When set (root tasks only), raised the instant an exception escapes the
  // coroutine so the simulator can surface the failure at the next event
  // boundary instead of waiting for a lazy reap.
  bool* failure_flag = nullptr;

  std::suspend_always initial_suspend() const noexcept { return {}; }
  void unhandled_exception() noexcept {
    exception = std::current_exception();
    if (failure_flag != nullptr) *failure_flag = true;
  }
};

}  // namespace detail

/// A lazily-started coroutine returning T. Move-only; owns its frame.
template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    T value{};

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    detail::FinalAwaiter<promise_type> final_suspend() const noexcept {
      return {};
    }
    template <typename U>
    void return_value(U&& v) {
      value = std::forward<U>(v);
    }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const { return handle_ != nullptr; }
  [[nodiscard]] bool done() const { return !handle_ || handle_.done(); }

  /// Starts the coroutine without awaiting it (for root tasks).
  void start() {
    if (handle_ && !handle_.done()) handle_.resume();
  }

  /// Rethrows the stored exception, if any (root-task bookkeeping).
  void rethrow_if_failed() const {
    if (handle_ && handle_.done() && handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return !h || h.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> parent) noexcept {
        h.promise().continuation = parent;
        return h;  // symmetric transfer: start the child now
      }
      T await_resume() {
        if (h.promise().exception) {
          std::rethrow_exception(h.promise().exception);
        }
        return std::move(h.promise().value);
      }
    };
    return Awaiter{handle_};
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_{};
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    detail::FinalAwaiter<promise_type> final_suspend() const noexcept {
      return {};
    }
    void return_void() const noexcept {}
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const { return handle_ != nullptr; }
  [[nodiscard]] bool done() const { return !handle_ || handle_.done(); }

  void start() {
    if (handle_ && !handle_.done()) handle_.resume();
  }

  void rethrow_if_failed() const {
    if (handle_ && handle_.done() && handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

  /// Root-task bookkeeping: points the promise at a flag the owner polls,
  /// set the moment an exception escapes the coroutine. Must be called
  /// before start() to catch synchronous failures.
  void set_failure_flag(bool* flag) {
    if (handle_) handle_.promise().failure_flag = flag;
  }

  [[nodiscard]] bool failed() const {
    return handle_ && handle_.done() && handle_.promise().exception;
  }

  [[nodiscard]] std::exception_ptr exception() const {
    return handle_ ? handle_.promise().exception : nullptr;
  }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return !h || h.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> parent) noexcept {
        h.promise().continuation = parent;
        return h;
      }
      void await_resume() {
        if (h.promise().exception) {
          std::rethrow_exception(h.promise().exception);
        }
      }
    };
    return Awaiter{handle_};
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_{};
};

}  // namespace heron::sim
