// Small-buffer-optimized move-only callable for simulator events.
//
// The old kernel carried a std::function<void()> per event. libstdc++ only
// stores trivially-copyable targets up to 16 bytes inline, so most capture
// lists heap-allocate, and every invocation pays two indirections. The
// simulator's dominant payloads are (a) bare coroutine handles (sleep and
// timer resumes) and (b) small capture lists; EventFn stores both inline
// and resumes coroutine handles directly, without a dispatch table.
#pragma once

#include <coroutine>
#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace heron::sim {

class EventFn {
 public:
  /// Inline payload budget, sized so Event (when + seq + EventFn) fills a
  /// single 64-byte cache line.
  static constexpr std::size_t kInlineBytes = 40;

  EventFn() noexcept = default;

  /// Coroutine-resume fast path: operator() calls h.resume() directly.
  EventFn(std::coroutine_handle<> h) noexcept : ops_(&kHandleOps) {
    void* addr = h.address();
    std::memcpy(storage_, &addr, sizeof(addr));
  }

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
             !std::is_convertible_v<F, std::coroutine_handle<>> &&
             std::is_invocable_v<std::remove_cvref_t<F>&>)
  EventFn(F&& f) {  // NOLINT(bugprone-forwarding-reference-overload)
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      Fn* heap = new Fn(std::forward<F>(f));
      std::memcpy(storage_, &heap, sizeof(heap));
      ops_ = &kHeapOps<Fn>;
    }
  }

  EventFn(EventFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      relocate_from(other);
      other.ops_ = nullptr;
    }
  }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        relocate_from(other);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  void operator()() {
    if (ops_ == &kHandleOps) {
      void* addr;
      std::memcpy(&addr, storage_, sizeof(addr));
      std::coroutine_handle<>::from_address(addr).resume();
      return;
    }
    ops_->invoke(storage_);
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move-construct dst from src and destroy src. Must not throw: inline
    // targets are required to be nothrow-move-constructible. nullptr means
    // "memcpy the storage": pointer payloads and trivially-copyable inline
    // targets relocate without an indirect call, which is what keeps the
    // event queue's slot sorts (which move Events around) cheap.
    void (*relocate)(void* dst, void* src) noexcept;
    // nullptr means trivially destructible: ~EventFn skips the call.
    void (*destroy)(void* storage) noexcept;
  };

  void relocate_from(EventFn& other) noexcept {
    if (ops_->relocate != nullptr) {
      ops_->relocate(storage_, other.storage_);
    } else {
      std::memcpy(storage_, other.storage_, kInlineBytes);
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr && ops_->destroy != nullptr) ops_->destroy(storage_);
  }

  static void handle_invoke(void* storage) {
    void* addr;
    std::memcpy(&addr, storage, sizeof(addr));
    std::coroutine_handle<>::from_address(addr).resume();
  }

  template <typename Fn>
  static Fn* inline_target(void* storage) {
    return std::launder(reinterpret_cast<Fn*>(storage));
  }
  template <typename Fn>
  static void inline_invoke(void* storage) {
    (*inline_target<Fn>(storage))();
  }
  template <typename Fn>
  static void inline_relocate(void* dst, void* src) noexcept {
    Fn* from = inline_target<Fn>(src);
    ::new (dst) Fn(std::move(*from));
    from->~Fn();
  }
  template <typename Fn>
  static void inline_destroy(void* storage) noexcept {
    inline_target<Fn>(storage)->~Fn();
  }

  template <typename Fn>
  static Fn* heap_target(void* storage) {
    Fn* ptr;
    std::memcpy(&ptr, storage, sizeof(ptr));
    return ptr;
  }
  template <typename Fn>
  static void heap_invoke(void* storage) {
    (*heap_target<Fn>(storage))();
  }
  template <typename Fn>
  static void heap_destroy(void* storage) noexcept {
    delete heap_target<Fn>(storage);
  }

  static constexpr Ops kHandleOps{&handle_invoke, nullptr, nullptr};
  template <typename Fn>
  static constexpr Ops kInlineOps{
      &inline_invoke<Fn>,
      std::is_trivially_copyable_v<Fn> ? nullptr : &inline_relocate<Fn>,
      std::is_trivially_destructible_v<Fn> ? nullptr : &inline_destroy<Fn>};
  template <typename Fn>
  static constexpr Ops kHeapOps{&heap_invoke<Fn>, nullptr, &heap_destroy<Fn>};

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
};

}  // namespace heron::sim
