// Single-threaded CPU resource.
//
// Replicas in the paper are single-threaded (§III-D1): ordering-protocol
// work and request execution contend for the same core. Coroutines that
// run "on" a node charge their CPU time through this resource, which
// serializes them in virtual time and so creates realistic saturation
// behaviour under closed-loop load.
#pragma once

#include <algorithm>

#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace heron::sim {

class Cpu {
 public:
  explicit Cpu(Simulator& sim) : sim_(&sim) {}

  /// Occupies the CPU for `duration` ns, queueing behind earlier users.
  /// Returns after the work completes.
  Task<void> use(Nanos duration) {
    const Nanos start = std::max(sim_->now(), free_at_);
    free_at_ = start + duration;
    busy_total_ += duration;
    const Nanos done = free_at_;
    if (done > sim_->now()) co_await sim_->sleep(done - sim_->now());
  }

  /// Time at which the CPU becomes idle (diagnostics).
  [[nodiscard]] Nanos free_at() const { return free_at_; }

  /// Total busy time charged so far; busy_fraction = busy_total/now.
  [[nodiscard]] Nanos busy_total() const { return busy_total_; }

 private:
  Simulator* sim_;
  Nanos free_at_ = 0;
  Nanos busy_total_ = 0;
};

}  // namespace heron::sim
