// Discrete-event simulator: a virtual clock plus an ordered event queue.
//
// Events at equal timestamps execute in schedule order (FIFO), which makes
// every run fully deterministic for a given seed. One event executes at a
// time; this is what gives the simulation the 8-byte access atomicity the
// paper obtains from RDMA hardware.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <vector>

#include "sim/task.hpp"
#include "sim/time.hpp"

namespace heron::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  [[nodiscard]] Nanos now() const { return now_; }

  /// Schedules `fn` to run `delay` ns from now (delay >= 0).
  void schedule(Nanos delay, std::function<void()> fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Schedules `fn` at absolute virtual time `when` (>= now()).
  void schedule_at(Nanos when, std::function<void()> fn) {
    if (when < now_) {
      throw std::logic_error("Simulator: scheduling into the past");
    }
    queue_.push(Event{when, next_seq_++, std::move(fn)});
  }

  /// Starts a root coroutine. The simulator owns the frame until the task
  /// completes (or until the simulator is destroyed). An exception
  /// escaping a root task is rethrown from run()/run_until().
  void spawn(Task<void> task);

  /// Runs until the event queue is empty.
  void run();

  /// Runs events with timestamp <= deadline; leaves later events queued
  /// and advances the clock to `deadline`.
  void run_until(Nanos deadline);

  /// Convenience: run_until(now() + duration).
  void run_for(Nanos duration) { run_until(now_ + duration); }

  /// Awaitable that resumes the coroutine `delay` ns later. A zero delay
  /// still yields to the event loop (runs after already-queued events at
  /// the current instant).
  [[nodiscard]] auto sleep(Nanos delay) {
    struct Awaiter {
      Simulator& sim;
      Nanos delay;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) const {
        sim.schedule(delay, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, delay};
  }

  /// Number of events executed so far (diagnostics).
  [[nodiscard]] std::uint64_t events_executed() const {
    return events_executed_;
  }

  /// Number of events currently scheduled and not yet run (diagnostics;
  /// lets tests assert that waiting primitives don't bloat the queue).
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    Nanos when;
    std::uint64_t seq;
    std::function<void()> fn;

    bool operator>(const Event& other) const {
      return when != other.when ? when > other.when : seq > other.seq;
    }
  };

  void step(Event&& ev);
  void reap_roots();

  Nanos now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::vector<Task<void>> roots_;
};

}  // namespace heron::sim
