// Discrete-event simulator: a virtual clock plus an ordered event queue.
//
// Events at equal timestamps execute in schedule order (FIFO), which makes
// every run fully deterministic for a given seed. One event executes at a
// time; this is what gives the simulation the 8-byte access atomicity the
// paper obtains from RDMA hardware.
//
// The event queue is a bucketed timer wheel (see event_queue.hpp) and the
// per-event callable is a small-buffer-optimized EventFn with a direct
// coroutine-resume fast path (see callable.hpp); both preserve the exact
// (timestamp, seq) total order of the original binary-heap kernel, so
// same-seed runs stay bit-identical across the swap.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace heron::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  [[nodiscard]] Nanos now() const { return now_; }

  /// Schedules `fn` to run `delay` ns from now (delay >= 0).
  void schedule(Nanos delay, EventFn fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Schedules `fn` at absolute virtual time `when` (>= now()).
  void schedule_at(Nanos when, EventFn fn) {
    if (when < now_) {
      throw std::logic_error("Simulator: scheduling into the past");
    }
    queue_.push(Event{when, next_seq_++, std::move(fn)});
  }

  /// Handle to a cancelable timer (see schedule_timer_at). Default state is
  /// unarmed; cancel_timer on an unarmed token is a no-op.
  struct TimerToken {
    std::uint32_t slot = UINT32_MAX;
    std::uint32_t gen = 0;

    [[nodiscard]] bool armed() const { return slot != UINT32_MAX; }
  };

  /// Schedules `fn` at `when` through the cancelable timer pool: the
  /// callable lives in a recycled pool slot (no allocation) and
  /// cancel_timer disarms it in O(1). A canceled timer's queue entry still
  /// fires as an empty event at `when` (it just finds a bumped generation),
  /// so pending_events() counts it until the deadline passes — same
  /// footprint as the old single-deadline-timer pattern.
  TimerToken schedule_timer_at(Nanos when, EventFn fn);

  /// Disarms the timer if `token` is still current; clears the token.
  /// Returns true if the timer had been armed and was canceled.
  bool cancel_timer(TimerToken& token);

  /// Starts a root coroutine. The simulator owns the frame until the task
  /// completes (or until the simulator is destroyed). An exception
  /// escaping a root task is rethrown from run()/run_until() at the next
  /// event boundary.
  void spawn(Task<void> task);

  /// Runs until the event queue is empty.
  void run();

  /// Runs events with timestamp <= deadline; leaves later events queued
  /// and advances the clock to `deadline`.
  void run_until(Nanos deadline);

  /// Convenience: run_until(now() + duration).
  void run_for(Nanos duration) { run_until(now_ + duration); }

  /// Awaitable that resumes the coroutine `delay` ns later. A zero delay
  /// still yields to the event loop (runs after already-queued events at
  /// the current instant).
  [[nodiscard]] auto sleep(Nanos delay) {
    struct Awaiter {
      Simulator& sim;
      Nanos delay;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) const {
        sim.schedule(delay, EventFn(h));
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, delay};
  }

  /// Number of events executed so far (diagnostics).
  [[nodiscard]] std::uint64_t events_executed() const {
    return events_executed_;
  }

  /// Number of events currently scheduled and not yet run (diagnostics;
  /// lets tests assert that waiting primitives don't bloat the queue).
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

 private:
  struct TimerSlot {
    EventFn fn;
    std::uint32_t gen = 0;
  };

  void step(Event&& ev);
  void reap_roots();
  void fire_timer(std::uint32_t slot, std::uint32_t gen);

  Nanos now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  EventQueue queue_;
  std::vector<Task<void>> roots_;
  std::vector<TimerSlot> timer_slots_;
  std::vector<std::uint32_t> timer_free_;
  // Set by a root task's promise the instant an exception escapes it;
  // checked after every event so failures surface promptly instead of at
  // the next lazy reap.
  bool root_failed_ = false;
};

}  // namespace heron::sim
