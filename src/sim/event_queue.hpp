// Bucketed timer-wheel event queue for the discrete-event simulator.
//
// The old kernel popped a std::priority_queue: O(log n) comparison-heavy
// sift per operation, plus the pop had to move out of top() via const_cast
// (unspecified-behaviour territory). This queue hashes each event into one
// of 4096 wheel slots of 64 ns each (a ~262 us horizon); events beyond the
// horizon wait in coarse far buckets (an ordered map keyed by wheel span)
// and are scattered into the wheel when it drains. Push and pop are O(1)
// amortized, and pop returns the event by value before it executes.
//
// Determinism contract: pop order is exactly ascending (when, seq) — the
// same total order the old binary heap produced — so same-seed runs are
// bit-identical across the swap. Slots collect events unsorted and sort
// lazily by (when, seq) once the slot becomes the active (draining) one;
// events pushed into the active slot insert in sorted position among the
// not-yet-drained tail.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <cstdint>
#include <limits>
#include <map>
#include <vector>

#include "sim/callable.hpp"
#include "sim/time.hpp"

namespace heron::sim {

struct Event {
  Nanos when;
  std::uint64_t seq;
  EventFn fn;
};

class EventQueue {
 public:
  void push(Event ev) {
    const std::int64_t s = slot_of(ev.when);
    ++size_;
    if (s < base_ + kSlots && s < far_floor_) {
      // The slot fits the wheel window and precedes every far bucket.
      if (s == active_) {
        insert_sorted_active(std::move(ev));
        return;
      }
      if (s < active_) {
        // A peek activated a later slot before anything was popped from
        // it; re-scan on the next pop. Only possible with an undrained
        // active slot (once an event pops, now >= the active slot start
        // and nothing can schedule before it).
        assert(drain_idx_ == 0);
        active_ = -1;
      }
      std::vector<Event>& vec = slots_[ring(s)];
      vec.push_back(std::move(ev));
      set_bit(s);
      ++wheel_count_;
    } else {
      const std::int64_t key = s >> kSlotsLog2;
      FarBucket& bucket = far_[key];
      bucket.min_when = bucket.events.empty()
                            ? ev.when
                            : std::min(bucket.min_when, ev.when);
      bucket.events.push_back(std::move(ev));
      far_floor_ = std::min(far_floor_, key << kSlotsLog2);
    }
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Timestamp of the next event in pop order. Pre: !empty(). Peeking
  /// never scatters far buckets or advances the wheel base, so it is safe
  /// to peek, decline to pop, and keep scheduling earlier events (the
  /// run_until pattern).
  [[nodiscard]] Nanos next_when() {
    assert(size_ > 0);
    if (wheel_count_ == 0) return far_.begin()->second.min_when;
    ensure_active();
    return slots_[ring(active_)][drain_idx_].when;
  }

  /// Pops the next event in (when, seq) order. Pre: !empty().
  Event pop() {
    assert(size_ > 0);
    while (wheel_count_ == 0) scatter();
    ensure_active();
    std::vector<Event>& vec = slots_[ring(active_)];
    Event ev = std::move(vec[drain_idx_]);
    ++drain_idx_;
    --size_;
    --wheel_count_;
    // The caller executes this event next, so virtual time reaches the
    // active slot and the window can safely rebase onto it.
    base_ = active_;
    if (drain_idx_ == vec.size()) {
      vec.clear();  // keeps capacity for reuse
      clear_bit(active_);
      active_ = -1;
      drain_idx_ = 0;
    }
    return ev;
  }

 private:
  static constexpr int kGranLog2 = 6;    // 64 ns per wheel slot
  static constexpr int kSlotsLog2 = 12;  // 4096 slots => ~262 us horizon
  static constexpr std::int64_t kSlots = std::int64_t{1} << kSlotsLog2;
  static constexpr std::int64_t kSlotMask = kSlots - 1;
  static constexpr std::size_t kBitmapWords = kSlots / 64;
  static constexpr std::int64_t kNoFloor =
      std::numeric_limits<std::int64_t>::max();

  struct FarBucket {
    std::vector<Event> events;
    Nanos min_when = 0;
  };

  static std::int64_t slot_of(Nanos when) { return when >> kGranLog2; }
  static std::size_t ring(std::int64_t slot) {
    return static_cast<std::size_t>(slot & kSlotMask);
  }
  static bool event_less(const Event& a, const Event& b) {
    return a.when != b.when ? a.when < b.when : a.seq < b.seq;
  }

  void set_bit(std::int64_t slot) {
    const std::size_t r = ring(slot);
    bitmap_[r >> 6] |= std::uint64_t{1} << (r & 63);
  }
  void clear_bit(std::int64_t slot) {
    const std::size_t r = ring(slot);
    bitmap_[r >> 6] &= ~(std::uint64_t{1} << (r & 63));
  }

  /// First occupied absolute slot at or after base_. Pre: wheel_count_ > 0.
  /// Valid because every live wheel slot lies in [base_, base_ + kSlots).
  [[nodiscard]] std::int64_t next_occupied() const {
    const std::size_t start = ring(base_);
    std::size_t word = start >> 6;
    std::uint64_t bits = bitmap_[word] & (~std::uint64_t{0} << (start & 63));
    for (std::size_t scanned = 0;; ++scanned) {
      assert(scanned <= kBitmapWords);
      if (bits != 0) {
        const std::size_t r =
            (word << 6) + static_cast<std::size_t>(std::countr_zero(bits));
        const std::int64_t delta =
            static_cast<std::int64_t>((r - start) & kSlotMask);
        return base_ + delta;
      }
      word = (word + 1) % kBitmapWords;
      bits = bitmap_[word];
    }
  }

  /// Picks and sorts the next draining slot. Pre: wheel_count_ > 0. Does
  /// not touch base_: peeks must leave the push window alone.
  void ensure_active() {
    if (active_ >= 0) return;
    const std::int64_t s = next_occupied();
    sort_slot(slots_[ring(s)]);
    active_ = s;
    drain_idx_ = 0;
  }

  /// Sorts a slot vector into (when, seq) order. Events land in a slot in
  /// ascending seq order, and the only reorder (this function) preserves
  /// the relative order of equal-when events — so equal-when runs are
  /// always already seq-ascending, and a *stable* counting sort keyed by
  /// the 6-bit in-slot offset of `when` yields exactly the (when, seq)
  /// order a comparison sort would, at one move per event and zero
  /// comparisons.
  void sort_slot(std::vector<Event>& vec) {
    if (vec.size() < 2) return;
    constexpr std::int64_t kGranMask = (std::int64_t{1} << kGranLog2) - 1;
    std::array<std::uint32_t, (1u << kGranLog2) + 1> start{};
    Nanos lo = vec.front().when;
    Nanos hi = lo;
    for (const Event& ev : vec) {
      ++start[static_cast<std::size_t>(ev.when & kGranMask) + 1];
      lo = std::min(lo, ev.when);
      hi = std::max(hi, ev.when);
    }
    if (lo == hi) return;  // single timestamp: already in seq order
    for (std::size_t i = 1; i <= kGranMask; ++i) start[i + 1] += start[i];
    scratch_.resize(vec.size());
    for (Event& ev : vec) {
      scratch_[start[static_cast<std::size_t>(ev.when & kGranMask)]++] =
          std::move(ev);
    }
    vec.swap(scratch_);
    scratch_.clear();
  }

  /// Moves the earliest far bucket into the (empty) wheel.
  void scatter() {
    assert(wheel_count_ == 0 && !far_.empty());
    auto it = far_.begin();
    base_ = it->first << kSlotsLog2;
    active_ = -1;
    for (Event& ev : it->second.events) {
      const std::int64_t s = slot_of(ev.when);
      slots_[ring(s)].push_back(std::move(ev));
      set_bit(s);
      ++wheel_count_;
    }
    far_.erase(it);
    far_floor_ = far_.empty() ? kNoFloor : far_.begin()->first << kSlotsLog2;
  }

  void insert_sorted_active(Event ev) {
    std::vector<Event>& vec = slots_[ring(active_)];
    auto pos = std::upper_bound(vec.begin() + static_cast<std::ptrdiff_t>(
                                                  drain_idx_),
                                vec.end(), ev, &event_less);
    vec.insert(pos, std::move(ev));
    ++wheel_count_;
  }

  std::array<std::vector<Event>, kSlots> slots_;
  std::vector<Event> scratch_;  // reused by sort_slot
  std::array<std::uint64_t, kBitmapWords> bitmap_{};
  std::map<std::int64_t, FarBucket> far_;
  std::int64_t base_ = 0;        // lower bound of the push window
  std::int64_t active_ = -1;     // absolute slot being drained, -1 if none
  std::int64_t far_floor_ = kNoFloor;  // start slot of the first far bucket
  std::size_t drain_idx_ = 0;
  std::size_t size_ = 0;
  std::size_t wheel_count_ = 0;
};

}  // namespace heron::sim
