// Measurement helpers shared by tests and the benchmark harness.
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace heron::sim {

/// Collects latency samples (ns) and answers summary queries.
///
/// Two storage modes:
///  - kVerbatim (default): every sample kept; percentiles are exact.
///    Right for bench runs recording up to a few million points.
///  - kHistogram: HDR-style log-bucket counters — 64 sub-buckets per
///    octave, so any recorded value lands in a bucket whose width is at
///    most 1/64 of its magnitude (<= ~1.6% relative error, halved by
///    reporting bucket midpoints; values < 64 ns are exact). Memory is a
///    fixed ~30 KB however many samples arrive, which is what lets 10^6
///    open-loop clients record without holding 10^6-sample vectors.
///    min/max/count/mean/stddev stay exact via side accumulators.
class LatencyRecorder {
 public:
  enum class Mode { kVerbatim, kHistogram };

  LatencyRecorder() = default;
  explicit LatencyRecorder(Mode mode) { set_mode(mode); }

  /// Switches storage mode. Drops anything recorded so far.
  void set_mode(Mode mode) {
    mode_ = mode;
    clear();
    if (mode_ == Mode::kHistogram && buckets_.empty()) {
      buckets_.resize(kBucketCount, 0);
    }
  }
  [[nodiscard]] Mode mode() const { return mode_; }

  void record(Nanos v) {
    if (mode_ == Mode::kVerbatim) {
      samples_.push_back(v);
      sorted_ = false;  // a prior percentile()/cdf() sort is now stale
      return;
    }
    ++buckets_[bucket_of(v)];
    ++hist_count_;
    hist_sum_ += static_cast<double>(v);
    hist_sumsq_ += static_cast<double>(v) * static_cast<double>(v);
    hist_min_ = hist_count_ == 1 ? v : std::min(hist_min_, v);
    hist_max_ = hist_count_ == 1 ? v : std::max(hist_max_, v);
  }

  void clear() {
    samples_.clear();
    sorted_ = false;
    std::fill(buckets_.begin(), buckets_.end(), std::uint64_t{0});
    hist_count_ = 0;
    hist_sum_ = 0.0;
    hist_sumsq_ = 0.0;
    hist_min_ = 0;
    hist_max_ = 0;
  }

  [[nodiscard]] std::size_t count() const {
    return mode_ == Mode::kVerbatim ? samples_.size()
                                    : static_cast<std::size_t>(hist_count_);
  }
  [[nodiscard]] bool empty() const { return count() == 0; }

  [[nodiscard]] double mean() const {
    if (mode_ == Mode::kHistogram) {
      return hist_count_ == 0 ? 0.0
                              : hist_sum_ / static_cast<double>(hist_count_);
    }
    if (samples_.empty()) return 0.0;
    double sum = 0.0;
    for (Nanos v : samples_) sum += static_cast<double>(v);
    return sum / static_cast<double>(samples_.size());
  }

  [[nodiscard]] double stddev() const {
    if (mode_ == Mode::kHistogram) {
      if (hist_count_ < 2) return 0.0;
      const double n = static_cast<double>(hist_count_);
      const double m = hist_sum_ / n;
      const double var = (hist_sumsq_ - n * m * m) / (n - 1.0);
      return var > 0.0 ? std::sqrt(var) : 0.0;
    }
    if (samples_.size() < 2) return 0.0;
    const double m = mean();
    double acc = 0.0;
    for (Nanos v : samples_) {
      const double d = static_cast<double>(v) - m;
      acc += d * d;
    }
    return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
  }

  [[nodiscard]] Nanos min() const {
    if (mode_ == Mode::kHistogram) return hist_min_;
    return samples_.empty() ? 0 : *std::min_element(samples_.begin(), samples_.end());
  }
  [[nodiscard]] Nanos max() const {
    if (mode_ == Mode::kHistogram) return hist_max_;
    return samples_.empty() ? 0 : *std::max_element(samples_.begin(), samples_.end());
  }

  /// Percentile in [0, 100] by nearest-rank on the sorted samples.
  /// Out-of-range p is clamped: before the clamp, a negative p produced a
  /// negative rank whose size_t conversion wrapped past the clamp-to-last
  /// guard and returned the *maximum* sample. Histogram mode uses the same
  /// nearest-rank rule over bucket counts and reports the bucket midpoint
  /// clamped to the observed [min, max].
  [[nodiscard]] Nanos percentile(double p) const {
    if (empty()) return 0;
    p = std::clamp(p, 0.0, 100.0);
    const double rank =
        (p / 100.0) * static_cast<double>(count() - 1);
    const auto idx = static_cast<std::size_t>(std::llround(rank));
    return value_at_rank(std::min(idx, count() - 1));
  }

  /// Evenly spaced CDF points: `n` pairs of (latency_ns, cumulative_frac).
  /// Uses the same nearest-rank rounding as percentile(), so
  /// cdf(n)[i-1].first == percentile(100 * i / n) for every point; the
  /// previous truncation disagreed with percentile() whenever the rank's
  /// fraction was >= 0.5.
  [[nodiscard]] std::vector<std::pair<Nanos, double>> cdf(
      std::size_t n = 100) const {
    std::vector<std::pair<Nanos, double>> out;
    if (empty() || n == 0) return out;
    out.reserve(n);
    for (std::size_t i = 1; i <= n; ++i) {
      const double frac = static_cast<double>(i) / static_cast<double>(n);
      const double rank = frac * static_cast<double>(count() - 1);
      const auto idx = static_cast<std::size_t>(std::llround(rank));
      out.emplace_back(value_at_rank(std::min(idx, count() - 1)), frac);
    }
    return out;
  }

  /// Verbatim samples; empty in histogram mode (summaries only).
  [[nodiscard]] const std::vector<Nanos>& samples() const { return samples_; }

 private:
  // 64 sub-buckets per octave: values < 64 map exactly; larger values use
  // (octave, top-6-mantissa-bits). 58 octaves cover the full Nanos range.
  static constexpr int kSubBits = 6;
  static constexpr std::int64_t kSubCount = std::int64_t{1} << kSubBits;
  static constexpr std::size_t kBucketCount =
      static_cast<std::size_t>((64 - kSubBits) * kSubCount);

  static std::size_t bucket_of(Nanos v) {
    if (v < kSubCount) return v < 0 ? 0 : static_cast<std::size_t>(v);
    const int msb = 63 - std::countl_zero(static_cast<std::uint64_t>(v));
    const int octave = msb - kSubBits + 1;  // 1-based; octave 0 is exact
    const std::int64_t sub = (v >> (msb - kSubBits)) & (kSubCount - 1);
    return static_cast<std::size_t>((octave << kSubBits) + sub);
  }

  /// Representative (midpoint) value for a bucket.
  static Nanos bucket_value(std::size_t idx) {
    if (idx < static_cast<std::size_t>(kSubCount)) {
      return static_cast<Nanos>(idx);
    }
    const int octave = static_cast<int>(idx >> kSubBits);
    const std::int64_t sub = static_cast<std::int64_t>(idx) & (kSubCount - 1);
    const int msb = octave + kSubBits - 1;
    const std::int64_t width = std::int64_t{1} << (msb - kSubBits);
    const std::int64_t lower = (std::int64_t{1} << msb) + sub * width;
    return lower + width / 2;
  }

  [[nodiscard]] Nanos value_at_rank(std::size_t rank) const {
    if (mode_ == Mode::kVerbatim) {
      sort_samples();
      return samples_[rank];
    }
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      seen += buckets_[i];
      if (seen > rank) {
        return std::clamp(bucket_value(i), hist_min_, hist_max_);
      }
    }
    return hist_max_;
  }

  // Sorting is a caching detail; queries stay logically const.
  void sort_samples() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  Mode mode_ = Mode::kVerbatim;
  mutable std::vector<Nanos> samples_;
  mutable bool sorted_ = false;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t hist_count_ = 0;
  double hist_sum_ = 0.0;
  double hist_sumsq_ = 0.0;
  Nanos hist_min_ = 0;
  Nanos hist_max_ = 0;
};

/// Throughput bookkeeping: completed operations over a virtual-time window.
struct ThroughputWindow {
  std::uint64_t completed = 0;
  Nanos window = 0;

  [[nodiscard]] double per_second() const {
    return window == 0 ? 0.0
                       : static_cast<double>(completed) /
                             (static_cast<double>(window) /
                              static_cast<double>(kNanosPerSec));
  }
};

}  // namespace heron::sim
