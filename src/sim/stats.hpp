// Measurement helpers shared by tests and the benchmark harness.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace heron::sim {

/// Collects latency samples (ns) and answers summary queries. Samples are
/// kept verbatim; bench runs record at most a few million points.
class LatencyRecorder {
 public:
  void record(Nanos v) {
    samples_.push_back(v);
    sorted_ = false;  // a prior percentile()/cdf() sort is now stale
  }
  void clear() { samples_.clear(); sorted_ = false; }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  [[nodiscard]] double mean() const {
    if (samples_.empty()) return 0.0;
    double sum = 0.0;
    for (Nanos v : samples_) sum += static_cast<double>(v);
    return sum / static_cast<double>(samples_.size());
  }

  [[nodiscard]] double stddev() const {
    if (samples_.size() < 2) return 0.0;
    const double m = mean();
    double acc = 0.0;
    for (Nanos v : samples_) {
      const double d = static_cast<double>(v) - m;
      acc += d * d;
    }
    return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
  }

  [[nodiscard]] Nanos min() const {
    return samples_.empty() ? 0 : *std::min_element(samples_.begin(), samples_.end());
  }
  [[nodiscard]] Nanos max() const {
    return samples_.empty() ? 0 : *std::max_element(samples_.begin(), samples_.end());
  }

  /// Percentile in [0, 100] by nearest-rank on the sorted samples.
  /// Out-of-range p is clamped: before the clamp, a negative p produced a
  /// negative rank whose size_t conversion wrapped past the clamp-to-last
  /// guard and returned the *maximum* sample.
  [[nodiscard]] Nanos percentile(double p) const {
    if (samples_.empty()) return 0;
    sort_samples();
    p = std::clamp(p, 0.0, 100.0);
    const double rank = (p / 100.0) * static_cast<double>(samples_.size() - 1);
    const auto idx = static_cast<std::size_t>(std::llround(rank));
    return samples_[std::min(idx, samples_.size() - 1)];
  }

  /// Evenly spaced CDF points: `n` pairs of (latency_ns, cumulative_frac).
  /// Uses the same nearest-rank rounding as percentile(), so
  /// cdf(n)[i-1].first == percentile(100 * i / n) for every point; the
  /// previous truncation disagreed with percentile() whenever the rank's
  /// fraction was >= 0.5.
  [[nodiscard]] std::vector<std::pair<Nanos, double>> cdf(
      std::size_t n = 100) const {
    std::vector<std::pair<Nanos, double>> out;
    if (samples_.empty() || n == 0) return out;
    sort_samples();
    out.reserve(n);
    for (std::size_t i = 1; i <= n; ++i) {
      const double frac = static_cast<double>(i) / static_cast<double>(n);
      const double rank = frac * static_cast<double>(samples_.size() - 1);
      const auto idx = static_cast<std::size_t>(std::llround(rank));
      out.emplace_back(samples_[std::min(idx, samples_.size() - 1)], frac);
    }
    return out;
  }

  [[nodiscard]] const std::vector<Nanos>& samples() const { return samples_; }

 private:
  // Sorting is a caching detail; queries stay logically const.
  void sort_samples() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  mutable std::vector<Nanos> samples_;
  mutable bool sorted_ = false;
};

/// Throughput bookkeeping: completed operations over a virtual-time window.
struct ThroughputWindow {
  std::uint64_t completed = 0;
  Nanos window = 0;

  [[nodiscard]] double per_second() const {
    return window == 0 ? 0.0
                       : static_cast<double>(completed) /
                             (static_cast<double>(window) /
                              static_cast<double>(kNanosPerSec));
  }
};

}  // namespace heron::sim
