// Wake-on-write notification primitive.
//
// Real Heron replicas busy-poll RDMA-registered memory words. In virtual
// time, busy-polling would flood the event queue, so waiters instead park
// on the Notifier attached to the memory they poll, and every RDMA write
// into that memory fires notify_all(). A configurable poll-detection
// delay can be charged by the caller to model the polling granularity.
#pragma once

#include <coroutine>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace heron::sim {

class Notifier {
 public:
  explicit Notifier(Simulator& sim) : sim_(&sim) {}

  /// Awaitable: suspends until the next notify_all(). Spurious wakeups are
  /// possible by design; callers re-check their predicate.
  [[nodiscard]] auto wait() {
    struct Awaiter {
      Notifier& n;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        n.waiters_.push_back([h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  /// Wakes all current waiters. Wakeups run as fresh events at the current
  /// virtual time, so a notifier fired from inside an event never re-enters
  /// the waiter synchronously.
  void notify_all() {
    if (waiters_.empty()) return;
    std::vector<std::function<void()>> woken;
    woken.swap(waiters_);
    for (auto& fn : woken) {
      sim_->schedule(0, std::move(fn));
    }
  }

  /// Registers a raw callback to run (as a fresh event) on the next
  /// notify_all(). Building block for composite awaiters such as
  /// wait_until_timeout.
  void add_waiter(std::function<void()> fn) { waiters_.push_back(std::move(fn)); }

  [[nodiscard]] std::size_t waiter_count() const { return waiters_.size(); }
  [[nodiscard]] Simulator& simulator() const { return *sim_; }

 private:
  Simulator* sim_;
  std::vector<std::function<void()>> waiters_;
};

/// Suspends until pred() is true, re-checking after every notification.
template <typename Pred>
Task<void> wait_until(Notifier& n, Pred pred) {
  while (!pred()) {
    co_await n.wait();
  }
}

/// Like wait_until, but gives up after `timeout` ns. Returns true if the
/// predicate became true, false on timeout. Used for the state-transfer
/// suspicion timeout (Algorithm 3, lines 19-22) and the lease write gate.
template <typename Pred>
Task<bool> wait_until_timeout(Notifier& n, Pred pred, Nanos timeout) {
  Simulator& sim = n.simulator();
  const Nanos deadline = sim.now() + timeout;
  // `armed` means the coroutine is suspended and the next event (notifier
  // or deadline) owns the resume; the loser of the race sees armed ==
  // false and does nothing.
  struct State {
    std::coroutine_handle<> h;
    bool armed = false;
  };
  // A single deadline timer for the whole wait, armed lazily on the first
  // suspension. Scheduling one per loop iteration would leave every
  // superseded timer pending in the event queue until the deadline --
  // quadratic bloat under notify-heavy predicates.
  std::shared_ptr<State> st;
  while (!pred()) {
    if (sim.now() >= deadline) co_return false;
    if (!st) {
      st = std::make_shared<State>();
      auto st_timer = st;
      sim.schedule_at(deadline, [st_timer] {
        if (st_timer->armed) {
          st_timer->armed = false;
          st_timer->h.resume();
        }
      });
    }
    // NOTE: the awaiter holds the shared state BY REFERENCE to the frame
    // local above and is otherwise trivially destructible. GCC 12
    // destroys non-trivial awaiter temporaries twice in this pattern
    // (double shared_ptr release -> use-after-free), so keep awaiter
    // members trivial.
    struct Awaiter {
      Notifier& n;
      std::shared_ptr<State>& st;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        st->h = h;
        st->armed = true;
        auto st_copy = st;
        n.add_waiter([st_copy] {
          if (st_copy->armed) {
            st_copy->armed = false;
            st_copy->h.resume();
          }
        });
      }
      void await_resume() const noexcept {}
    };
    co_await Awaiter{n, st};
  }
  co_return true;
}

}  // namespace heron::sim
