// Wake-on-write notification primitive.
//
// Real Heron replicas busy-poll RDMA-registered memory words. In virtual
// time, busy-polling would flood the event queue, so waiters instead park
// on the Notifier attached to the memory they poll, and every RDMA write
// into that memory fires notify_all(). A configurable poll-detection
// delay can be charged by the caller to model the polling granularity.
//
// Waiters are intrusive: each suspended coroutine embeds a WaitNode in its
// own frame and links it into the notifier's parked list — no allocation
// per wait. notify_all() moves the parked list onto a "fired" list stamped
// with a batch number and schedules ONE walker event that resumes exactly
// that batch in FIFO order, which reproduces the old one-event-per-waiter
// wakeup order (the per-waiter events had consecutive seqs, so nothing
// could interleave them).
//
// Liveness: a coroutine destroyed while parked (crash injection tearing
// down frames) unlinks its node in the awaiter's destructor, so the walker
// never resumes a dead handle — the node IS the liveness token. The
// node/walker bookkeeping lives in a refcounted control block so teardown
// is safe in any order of notifier, simulator and frame destruction.
#pragma once

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <utility>

#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace heron::sim {

namespace detail {

struct WaitNode;

struct WaitList {
  WaitNode* head = nullptr;
  WaitNode* tail = nullptr;
  std::size_t count = 0;
};

/// Shared between a Notifier and its in-flight walker events. Single
/// threaded, so a plain (non-atomic) refcount.
struct NotifyCtrl {
  std::uint32_t refs = 1;
  std::uint64_t batch_seq = 0;
  WaitList parked;
  WaitList fired;

  void acquire() noexcept { ++refs; }
  void release() noexcept {
    if (--refs == 0) delete this;
  }
};

/// One parked waiter, embedded in the waiting coroutine's frame (awaiter
/// member). Linked iff `list` is non-null; holds one ctrl ref while
/// linked. The destructor unlinks, so destroying a suspended frame
/// removes the waiter — no dead handle is ever left behind for a walker
/// to resume. unlink() is idempotent on purpose: GCC 12 can destroy
/// awaiter temporaries twice in some patterns (see wait_until_timeout in
/// the pre-intrusive kernel), and frame teardown may race with walker
/// unlinking.
struct WaitNode {
  WaitNode* prev = nullptr;
  WaitNode* next = nullptr;
  NotifyCtrl* ctrl = nullptr;
  WaitList* list = nullptr;
  std::coroutine_handle<> handle{};
  std::uint64_t batch = 0;

  WaitNode() = default;
  WaitNode(const WaitNode&) = delete;
  WaitNode& operator=(const WaitNode&) = delete;
  ~WaitNode() { unlink(); }

  void link(NotifyCtrl* c, WaitList* l) noexcept {
    ctrl = c;
    list = l;
    prev = l->tail;
    next = nullptr;
    (l->tail != nullptr ? l->tail->next : l->head) = this;
    l->tail = this;
    ++l->count;
    c->acquire();
  }

  void unlink() noexcept {
    if (list == nullptr) return;
    (prev != nullptr ? prev->next : list->head) = next;
    (next != nullptr ? next->prev : list->tail) = prev;
    --list->count;
    prev = next = nullptr;
    list = nullptr;
    std::exchange(ctrl, nullptr)->release();
  }
};

/// RAII ctrl reference held by walker events.
class CtrlRef {
 public:
  explicit CtrlRef(NotifyCtrl* c) noexcept : ctrl_(c) { ctrl_->acquire(); }
  CtrlRef(CtrlRef&& other) noexcept
      : ctrl_(std::exchange(other.ctrl_, nullptr)) {}
  CtrlRef(const CtrlRef&) = delete;
  CtrlRef& operator=(const CtrlRef&) = delete;
  CtrlRef& operator=(CtrlRef&&) = delete;
  ~CtrlRef() {
    if (ctrl_ != nullptr) ctrl_->release();
  }
  NotifyCtrl* operator->() const noexcept { return ctrl_; }

 private:
  NotifyCtrl* ctrl_;
};

}  // namespace detail

class Notifier {
 public:
  explicit Notifier(Simulator& sim)
      : sim_(&sim), ctrl_(new detail::NotifyCtrl) {}

  Notifier(Notifier&& other) noexcept
      : sim_(other.sim_), ctrl_(std::exchange(other.ctrl_, nullptr)) {}
  Notifier& operator=(Notifier&& other) noexcept {
    if (this != &other) {
      drop_ctrl();
      sim_ = other.sim_;
      ctrl_ = std::exchange(other.ctrl_, nullptr);
    }
    return *this;
  }
  Notifier(const Notifier&) = delete;
  Notifier& operator=(const Notifier&) = delete;

  ~Notifier() { drop_ctrl(); }

  /// Awaitable: suspends until the next notify_all(). Spurious wakeups are
  /// possible by design; callers re-check their predicate.
  [[nodiscard]] auto wait() {
    struct Awaiter {
      detail::NotifyCtrl* ctrl;
      detail::WaitNode node{};
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) noexcept {
        node.handle = h;
        node.link(ctrl, &ctrl->parked);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{ctrl_};
  }

  /// Wakes all current waiters. Wakeups run as a fresh event at the current
  /// virtual time, so a notifier fired from inside an event never re-enters
  /// the waiter synchronously. Waiters that park after this call (including
  /// from inside a woken waiter) belong to a later batch and are not woken
  /// by this one.
  void notify_all() {
    detail::NotifyCtrl* c = ctrl_;
    if (c->parked.head == nullptr) return;
    const std::uint64_t batch = ++c->batch_seq;
    for (detail::WaitNode* n = c->parked.head; n != nullptr; n = n->next) {
      n->batch = batch;
      n->list = &c->fired;
    }
    if (c->fired.tail != nullptr) {
      c->fired.tail->next = c->parked.head;
      c->parked.head->prev = c->fired.tail;
    } else {
      c->fired.head = c->parked.head;
    }
    c->fired.tail = c->parked.tail;
    c->fired.count += c->parked.count;
    c->parked = detail::WaitList{};
    sim_->schedule(0, Walker{detail::CtrlRef(c), batch});
  }

  [[nodiscard]] std::size_t waiter_count() const {
    return ctrl_->parked.count;
  }
  [[nodiscard]] Simulator& simulator() const { return *sim_; }

  /// Parks a caller-owned node on this notifier (building block for
  /// composite awaiters such as wait_until_timeout; node.handle must be
  /// set). The node unlinks itself on destruction.
  void park(detail::WaitNode& node) noexcept {
    node.link(ctrl_, &ctrl_->parked);
  }

 private:
  struct Walker {
    detail::CtrlRef ctrl;
    std::uint64_t batch;

    void operator()() {
      // Resume this batch in FIFO order. Each node is unlinked before its
      // resume: the resumed coroutine may re-park, finish (destroying the
      // node with its frame), destroy other parked frames, or destroy the
      // notifier itself — the ctrl ref keeps the lists valid throughout.
      while (detail::WaitNode* n = ctrl->fired.head) {
        if (n->batch > batch) break;
        const std::coroutine_handle<> h = n->handle;
        n->unlink();
        h.resume();
      }
    }
  };

  void drop_ctrl() noexcept {
    if (ctrl_ == nullptr) return;
    // Parked waiters never resume once their notifier is gone (same
    // drop-on-destroy semantics as the callback-vector kernel); detach
    // them so frame teardown doesn't touch a freed list. Fired waiters
    // stay linked: their walker holds its own ctrl ref and still resumes
    // them.
    while (ctrl_->parked.head != nullptr) ctrl_->parked.head->unlink();
    std::exchange(ctrl_, nullptr)->release();
  }

  Simulator* sim_;
  detail::NotifyCtrl* ctrl_;
};

/// Suspends until pred() is true, re-checking after every notification.
template <typename Pred>
Task<void> wait_until(Notifier& n, Pred pred) {
  while (!pred()) {
    co_await n.wait();
  }
}

/// Like wait_until, but gives up after `timeout` ns. Returns true if the
/// predicate became true, false on timeout. Used for the state-transfer
/// suspicion timeout (Algorithm 3, lines 19-22) and the lease write gate.
template <typename Pred>
Task<bool> wait_until_timeout(Notifier& n, Pred pred, Nanos timeout) {
  Simulator& sim = n.simulator();
  const Nanos deadline = sim.now() + timeout;
  // One deadline timer for the whole wait, armed lazily on the first
  // suspension through the simulator's cancelable timer pool (zero
  // allocation) and canceled when the frame unwinds — including external
  // destruction mid-wait, since frame locals run their destructors then.
  // The timer resumes the coroutine directly; between events it is either
  // parked on `n` (where a spurious resume is fine — the loop re-checks
  // pred and deadline) or already finished with the timer canceled.
  Simulator::TimerToken timer;
  struct CancelGuard {
    Simulator& sim;
    Simulator::TimerToken& timer;
    CancelGuard(Simulator& s, Simulator::TimerToken& t) : sim(s), timer(t) {}
    ~CancelGuard() { sim.cancel_timer(timer); }
  } guard(sim, timer);
  while (!pred()) {
    if (sim.now() >= deadline) co_return false;
    struct Awaiter {
      Notifier& n;
      Simulator& sim;
      Nanos deadline;
      Simulator::TimerToken& timer;
      detail::WaitNode node{};
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        node.handle = h;
        n.park(node);
        if (!timer.armed()) {
          timer = sim.schedule_timer_at(deadline, EventFn(h));
        }
      }
      void await_resume() const noexcept {}
    };
    co_await Awaiter{n, sim, deadline, timer};
  }
  co_return true;
}

}  // namespace heron::sim
