// Virtual time for the discrete-event simulator.
//
// All simulated latencies in this repository are expressed in integer
// nanoseconds of *virtual* time. Helper factories (us/ms/sec) keep call
// sites readable and conversion helpers (to_us/...) keep reporting code
// free of magic constants.
#pragma once

#include <cstdint>

namespace heron::sim {

/// Virtual time instant or duration, in nanoseconds.
using Nanos = std::int64_t;

constexpr Nanos kNanosPerMicro = 1'000;
constexpr Nanos kNanosPerMilli = 1'000'000;
constexpr Nanos kNanosPerSec = 1'000'000'000;

/// Builds a duration from microseconds.
constexpr Nanos us(double v) { return static_cast<Nanos>(v * kNanosPerMicro); }
/// Builds a duration from milliseconds.
constexpr Nanos ms(double v) { return static_cast<Nanos>(v * kNanosPerMilli); }
/// Builds a duration from seconds.
constexpr Nanos sec(double v) { return static_cast<Nanos>(v * kNanosPerSec); }

/// Converts a duration to (fractional) microseconds for reporting.
constexpr double to_us(Nanos v) {
  return static_cast<double>(v) / static_cast<double>(kNanosPerMicro);
}
/// Converts a duration to (fractional) milliseconds for reporting.
constexpr double to_ms(Nanos v) {
  return static_cast<double>(v) / static_cast<double>(kNanosPerMilli);
}
/// Converts a duration to (fractional) seconds for reporting.
constexpr double to_sec(Nanos v) {
  return static_cast<double>(v) / static_cast<double>(kNanosPerSec);
}

}  // namespace heron::sim
