#include "sim/log.hpp"

#include <cstdio>

namespace heron::sim {

namespace {
LogLevel g_level = LogLevel::kNone;
LogSink g_sink;
}  // namespace

LogLevel log_level() noexcept { return g_level; }
void set_log_level(LogLevel level) noexcept { g_level = level; }

void set_log_sink(LogSink sink) { g_sink = std::move(sink); }

void log_line(Nanos now, const std::string& msg) {
  if (g_sink) {
    g_sink(now, msg);
    return;
  }
  std::fprintf(stderr, "[%12.3f us] %s\n", to_us(now), msg.c_str());
}

}  // namespace heron::sim
