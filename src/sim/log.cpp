#include "sim/log.hpp"

#include <cstdio>

namespace heron::sim {

namespace {
LogLevel g_level = LogLevel::kNone;
}  // namespace

LogLevel log_level() noexcept { return g_level; }
void set_log_level(LogLevel level) noexcept { g_level = level; }

void log_line(Nanos now, const std::string& msg) {
  std::fprintf(stderr, "[%12.3f us] %s\n", to_us(now), msg.c_str());
}

}  // namespace heron::sim
