#include "sim/simulator.hpp"

#include <algorithm>

namespace heron::sim {

void Simulator::spawn(Task<void> task) {
  task.start();
  if (!task.done()) {
    roots_.push_back(std::move(task));
  } else {
    task.rethrow_if_failed();
  }
  // Lazy cleanup so long runs with many short-lived roots don't grow.
  if (roots_.size() > 64) reap_roots();
}

void Simulator::reap_roots() {
  for (const auto& t : roots_) t.rethrow_if_failed();
  std::erase_if(roots_, [](const Task<void>& t) { return t.done(); });
}

void Simulator::step(Event&& ev) {
  now_ = ev.when;
  ++events_executed_;
  ev.fn();
}

void Simulator::run() {
  while (!queue_.empty()) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    step(std::move(ev));
  }
  reap_roots();
}

void Simulator::run_until(Nanos deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    step(std::move(ev));
  }
  now_ = std::max(now_, deadline);
  reap_roots();
}

}  // namespace heron::sim
