#include "sim/simulator.hpp"

#include <algorithm>
#include <utility>

namespace heron::sim {

void Simulator::spawn(Task<void> task) {
  task.set_failure_flag(&root_failed_);
  task.start();
  if (!task.done()) {
    roots_.push_back(std::move(task));
  } else if (task.failed()) {
    root_failed_ = false;
    task.rethrow_if_failed();
  }
  // Lazy cleanup so long runs with many short-lived roots don't grow.
  if (roots_.size() > 64) reap_roots();
}

void Simulator::reap_roots() {
  root_failed_ = false;
  std::exception_ptr failure;
  for (const auto& t : roots_) {
    if (t.failed()) {
      failure = t.exception();
      break;
    }
  }
  std::erase_if(roots_, [](const Task<void>& t) { return t.done(); });
  if (failure) std::rethrow_exception(failure);
}

void Simulator::step(Event&& ev) {
  now_ = ev.when;
  ++events_executed_;
  ev.fn();
}

void Simulator::run() {
  while (!queue_.empty()) {
    step(queue_.pop());
    if (root_failed_) reap_roots();
  }
  reap_roots();
}

void Simulator::run_until(Nanos deadline) {
  while (!queue_.empty() && queue_.next_when() <= deadline) {
    step(queue_.pop());
    if (root_failed_) reap_roots();
  }
  now_ = std::max(now_, deadline);
  reap_roots();
}

Simulator::TimerToken Simulator::schedule_timer_at(Nanos when, EventFn fn) {
  std::uint32_t slot;
  if (!timer_free_.empty()) {
    slot = timer_free_.back();
    timer_free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(timer_slots_.size());
    timer_slots_.emplace_back();
  }
  TimerSlot& ts = timer_slots_[slot];
  ts.fn = std::move(fn);
  const std::uint32_t gen = ts.gen;
  schedule_at(when, [this, slot, gen] { fire_timer(slot, gen); });
  return TimerToken{slot, gen};
}

bool Simulator::cancel_timer(TimerToken& token) {
  if (!token.armed()) return false;
  TimerSlot& ts = timer_slots_[token.slot];
  const bool live = ts.gen == token.gen;
  if (live) {
    ++ts.gen;  // the queued shell finds a stale generation and no-ops
    ts.fn = EventFn{};
    timer_free_.push_back(token.slot);
  }
  token = TimerToken{};
  return live;
}

void Simulator::fire_timer(std::uint32_t slot, std::uint32_t gen) {
  TimerSlot& ts = timer_slots_[slot];
  if (ts.gen != gen) return;  // canceled (or recycled) since scheduling
  ++ts.gen;
  EventFn fn = std::move(ts.fn);
  ts.fn = EventFn{};
  timer_free_.push_back(slot);
  fn();
}

}  // namespace heron::sim
