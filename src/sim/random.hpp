// Deterministic, seedable random number generation for the simulator.
//
// We provide our own small generator (xoshiro256**, seeded via splitmix64)
// instead of std::mt19937 for two reasons: (a) identical streams across
// standard libraries, so benchmark output is reproducible everywhere, and
// (b) cheap per-process forks — every simulated process derives its own
// stream from a root seed, so adding a process never perturbs the draws
// seen by another.
#pragma once

#include <cmath>
#include <cstdint>

namespace heron::sim {

/// splitmix64 step; used for seeding and stream derivation.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG with distribution helpers used by workloads and
/// latency jitter models.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Derives an independent stream; `stream` distinguishes children.
  [[nodiscard]] Rng fork(std::uint64_t stream) const {
    std::uint64_t sm = state_[0] ^ (state_[3] * 0x9e3779b97f4a7c15ULL) ^
                       (stream + 0x2545f4914f6cdd1dULL);
    Rng child(0);
    for (auto& word : child.state_) word = splitmix64(sm);
    return child;
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    // Width in unsigned space: `hi - lo` as signed overflows for extreme
    // spans (e.g. lo = INT64_MIN, hi >= 0), which is UB. Unsigned
    // subtraction wraps to the correct width; a full-span request wraps
    // the +1 to 0, meaning "any 64-bit value".
    const std::uint64_t range = static_cast<std::uint64_t>(hi) -
                                static_cast<std::uint64_t>(lo) + 1;
    if (range == 0) return static_cast<std::int64_t>(next());
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                     bounded(range));
  }

  /// Uniform integer in [0, bound). bound == 0 yields 0.
  std::uint64_t bounded(std::uint64_t bound) {
    if (bound == 0) return 0;
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto l = static_cast<std::uint64_t>(m);
    if (l < bound) {
      const std::uint64_t t = (0 - bound) % bound;
      while (l < t) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// True with probability p.
  bool chance(double p) { return uniform() < p; }

  /// Exponential with the given mean.
  double exponential(double mean) {
    double u = uniform();
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// Standard normal via Box-Muller (one value per call; simple > fast).
  double normal(double mean = 0.0, double stddev = 1.0) {
    double u1 = uniform();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double u2 = uniform();
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(6.28318530717958647692 * u2);
    return mean + stddev * z;
  }

  /// Lognormal parameterised by the *target* mean and sigma of log-space;
  /// used for service-time jitter (heavy right tail, like real CPUs).
  double lognormal_mean(double target_mean, double sigma) {
    const double mu = std::log(target_mean) - 0.5 * sigma * sigma;
    return std::exp(normal(mu, sigma));
  }

  /// TPC-C NURand non-uniform distribution (spec clause 2.1.6).
  std::int64_t nurand(std::int64_t a, std::int64_t x, std::int64_t y,
                      std::int64_t c) {
    return (((uniform_int(0, a) | uniform_int(x, y)) + c) % (y - x + 1)) + x;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

/// Zipfian key-skew generator over [0, n) with exponent theta (YCSB-style
/// rejection-inversion per Gray et al., "Quickly generating billion-record
/// synthetic databases"). theta = 0 degenerates to uniform; YCSB default
/// is 0.99. Construction is O(1); next() is O(1) with two uniform draws,
/// so a million-key space costs the same as a ten-key one. Rank 0 is the
/// hottest key; callers wanting scattered hot keys should permute the
/// output (e.g. multiply-hash it onto the key space).
class ZipfGen {
 public:
  ZipfGen(std::uint64_t n, double theta) : n_(n == 0 ? 1 : n), theta_(theta) {
    zetan_ = zeta_approx(n_, theta_);
    zeta2_ = zeta_approx(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }

  /// Draws a rank in [0, n); rank 0 is most popular.
  std::uint64_t next(Rng& rng) {
    if (theta_ <= 0.0) return rng.bounded(n_);
    const double u = rng.uniform();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const auto rank = static_cast<std::uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank >= n_ ? n_ - 1 : rank;
  }

  [[nodiscard]] std::uint64_t n() const { return n_; }
  [[nodiscard]] double theta() const { return theta_; }

 private:
  /// Generalized harmonic number H_{n,theta}. Exact for small n; for large
  /// n switches to the Euler–Maclaurin tail estimate so constructing a
  /// generator over 10^6+ keys doesn't cost 10^6 pow() calls. The estimate
  /// is accurate to ~1e-8 relative, far below the sampling noise of any
  /// bench that uses it.
  static double zeta_approx(std::uint64_t n, double theta) {
    const std::uint64_t exact = std::min<std::uint64_t>(n, 1024);
    double z = 0.0;
    for (std::uint64_t i = 1; i <= exact; ++i) {
      z += std::pow(static_cast<double>(i), -theta);
    }
    if (n > exact) {
      const double a = static_cast<double>(exact);
      const double b = static_cast<double>(n);
      // integral of x^-theta from a to b, plus trapezoid end corrections
      z += theta == 1.0
               ? std::log(b / a)
               : (std::pow(b, 1.0 - theta) - std::pow(a, 1.0 - theta)) /
                     (1.0 - theta);
      z += 0.5 * (std::pow(b, -theta) - std::pow(a, -theta));
    }
    return z;
  }

  std::uint64_t n_;
  double theta_;
  double zetan_;
  double zeta2_;
  double alpha_;
  double eta_;
};

}  // namespace heron::sim
