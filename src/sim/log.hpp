// Minimal leveled tracing for debugging simulated runs.
//
// Off by default; tests/benches enable it with set_log_level. The macro
// avoids building the message string when the level is disabled.
#pragma once

#include <functional>
#include <iostream>
#include <sstream>
#include <string>

#include "sim/time.hpp"

namespace heron::sim {

enum class LogLevel : int { kNone = 0, kInfo = 1, kDebug = 2, kTrace = 3 };

LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

/// Receives every emitted log line (virtual timestamp + message).
using LogSink = std::function<void(Nanos, const std::string&)>;

/// Installs a sink replacing the default stderr writer; an empty function
/// restores the default. Tests use this to capture output; telemetry uses
/// it to mirror log lines into traces.
void set_log_sink(LogSink sink);

void log_line(Nanos now, const std::string& msg);

}  // namespace heron::sim

// Usage: HSIM_LOG(sim, kDebug, "replica " << id << " delivered " << tmp);
#define HSIM_LOG(sim_expr, level, stream_expr)                              \
  do {                                                                      \
    if (static_cast<int>(::heron::sim::log_level()) >=                      \
        static_cast<int>(::heron::sim::LogLevel::level)) {                  \
      std::ostringstream hsim_log_os_;                                      \
      hsim_log_os_ << stream_expr;                                          \
      ::heron::sim::log_line((sim_expr).now(), hsim_log_os_.str());         \
    }                                                                       \
  } while (0)
