# Empty compiler generated dependencies file for fig5_vs_dynastar.
# This may be replaced when dependencies are built.
