file(REMOVE_RECURSE
  "CMakeFiles/fig5_vs_dynastar.dir/fig5_vs_dynastar.cpp.o"
  "CMakeFiles/fig5_vs_dynastar.dir/fig5_vs_dynastar.cpp.o.d"
  "fig5_vs_dynastar"
  "fig5_vs_dynastar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_vs_dynastar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
