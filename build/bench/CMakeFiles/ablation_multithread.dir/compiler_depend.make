# Empty compiler generated dependencies file for ablation_multithread.
# This may be replaced when dependencies are built.
