file(REMOVE_RECURSE
  "CMakeFiles/ablation_multithread.dir/ablation_multithread.cpp.o"
  "CMakeFiles/ablation_multithread.dir/ablation_multithread.cpp.o.d"
  "ablation_multithread"
  "ablation_multithread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multithread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
