# Empty dependencies file for table1_wait_for_all.
# This may be replaced when dependencies are built.
