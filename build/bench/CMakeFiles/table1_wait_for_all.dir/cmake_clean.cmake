file(REMOVE_RECURSE
  "CMakeFiles/table1_wait_for_all.dir/table1_wait_for_all.cpp.o"
  "CMakeFiles/table1_wait_for_all.dir/table1_wait_for_all.cpp.o.d"
  "table1_wait_for_all"
  "table1_wait_for_all.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_wait_for_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
