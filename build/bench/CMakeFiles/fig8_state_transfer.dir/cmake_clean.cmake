file(REMOVE_RECURSE
  "CMakeFiles/fig8_state_transfer.dir/fig8_state_transfer.cpp.o"
  "CMakeFiles/fig8_state_transfer.dir/fig8_state_transfer.cpp.o.d"
  "fig8_state_transfer"
  "fig8_state_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_state_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
