# Empty dependencies file for ablation_coord_delay.
# This may be replaced when dependencies are built.
