file(REMOVE_RECURSE
  "CMakeFiles/ablation_coord_delay.dir/ablation_coord_delay.cpp.o"
  "CMakeFiles/ablation_coord_delay.dir/ablation_coord_delay.cpp.o.d"
  "ablation_coord_delay"
  "ablation_coord_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_coord_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
