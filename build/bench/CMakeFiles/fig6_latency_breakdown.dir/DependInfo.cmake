
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig6_latency_breakdown.cpp" "bench/CMakeFiles/fig6_latency_breakdown.dir/fig6_latency_breakdown.cpp.o" "gcc" "bench/CMakeFiles/fig6_latency_breakdown.dir/fig6_latency_breakdown.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/heron_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/tpcc/CMakeFiles/heron_tpcc.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/heron_core.dir/DependInfo.cmake"
  "/root/repo/build/src/amcast/CMakeFiles/heron_amcast.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/heron_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/heron_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
