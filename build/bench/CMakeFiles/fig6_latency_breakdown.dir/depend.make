# Empty dependencies file for fig6_latency_breakdown.
# This may be replaced when dependencies are built.
