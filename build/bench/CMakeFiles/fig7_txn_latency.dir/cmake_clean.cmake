file(REMOVE_RECURSE
  "CMakeFiles/fig7_txn_latency.dir/fig7_txn_latency.cpp.o"
  "CMakeFiles/fig7_txn_latency.dir/fig7_txn_latency.cpp.o.d"
  "fig7_txn_latency"
  "fig7_txn_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_txn_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
