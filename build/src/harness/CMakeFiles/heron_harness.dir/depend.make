# Empty dependencies file for heron_harness.
# This may be replaced when dependencies are built.
