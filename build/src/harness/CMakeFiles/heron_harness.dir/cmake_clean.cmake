file(REMOVE_RECURSE
  "CMakeFiles/heron_harness.dir/runner.cpp.o"
  "CMakeFiles/heron_harness.dir/runner.cpp.o.d"
  "libheron_harness.a"
  "libheron_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heron_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
