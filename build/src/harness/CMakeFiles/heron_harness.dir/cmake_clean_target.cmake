file(REMOVE_RECURSE
  "libheron_harness.a"
)
