file(REMOVE_RECURSE
  "CMakeFiles/heron_sim.dir/log.cpp.o"
  "CMakeFiles/heron_sim.dir/log.cpp.o.d"
  "CMakeFiles/heron_sim.dir/simulator.cpp.o"
  "CMakeFiles/heron_sim.dir/simulator.cpp.o.d"
  "libheron_sim.a"
  "libheron_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heron_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
