file(REMOVE_RECURSE
  "libheron_sim.a"
)
