# Empty compiler generated dependencies file for heron_rdma.
# This may be replaced when dependencies are built.
