file(REMOVE_RECURSE
  "CMakeFiles/heron_rdma.dir/fabric.cpp.o"
  "CMakeFiles/heron_rdma.dir/fabric.cpp.o.d"
  "libheron_rdma.a"
  "libheron_rdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heron_rdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
