file(REMOVE_RECURSE
  "libheron_rdma.a"
)
