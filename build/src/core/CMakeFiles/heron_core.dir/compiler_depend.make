# Empty compiler generated dependencies file for heron_core.
# This may be replaced when dependencies are built.
