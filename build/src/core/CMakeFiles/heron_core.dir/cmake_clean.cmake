file(REMOVE_RECURSE
  "CMakeFiles/heron_core.dir/object_store.cpp.o"
  "CMakeFiles/heron_core.dir/object_store.cpp.o.d"
  "CMakeFiles/heron_core.dir/replica.cpp.o"
  "CMakeFiles/heron_core.dir/replica.cpp.o.d"
  "CMakeFiles/heron_core.dir/system.cpp.o"
  "CMakeFiles/heron_core.dir/system.cpp.o.d"
  "libheron_core.a"
  "libheron_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heron_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
