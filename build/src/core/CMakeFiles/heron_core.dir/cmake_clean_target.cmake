file(REMOVE_RECURSE
  "libheron_core.a"
)
