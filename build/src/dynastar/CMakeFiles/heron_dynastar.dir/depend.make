# Empty dependencies file for heron_dynastar.
# This may be replaced when dependencies are built.
