file(REMOVE_RECURSE
  "CMakeFiles/heron_dynastar.dir/system.cpp.o"
  "CMakeFiles/heron_dynastar.dir/system.cpp.o.d"
  "libheron_dynastar.a"
  "libheron_dynastar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heron_dynastar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
