file(REMOVE_RECURSE
  "libheron_dynastar.a"
)
