file(REMOVE_RECURSE
  "libheron_amcast.a"
)
