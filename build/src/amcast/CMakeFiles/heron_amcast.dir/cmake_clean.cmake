file(REMOVE_RECURSE
  "CMakeFiles/heron_amcast.dir/endpoint.cpp.o"
  "CMakeFiles/heron_amcast.dir/endpoint.cpp.o.d"
  "CMakeFiles/heron_amcast.dir/system.cpp.o"
  "CMakeFiles/heron_amcast.dir/system.cpp.o.d"
  "libheron_amcast.a"
  "libheron_amcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heron_amcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
