# Empty compiler generated dependencies file for heron_amcast.
# This may be replaced when dependencies are built.
