# CMake generated Testfile for 
# Source directory: /root/repo/src/amcast
# Build directory: /root/repo/build/src/amcast
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
