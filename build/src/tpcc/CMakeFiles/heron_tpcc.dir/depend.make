# Empty dependencies file for heron_tpcc.
# This may be replaced when dependencies are built.
