file(REMOVE_RECURSE
  "CMakeFiles/heron_tpcc.dir/app.cpp.o"
  "CMakeFiles/heron_tpcc.dir/app.cpp.o.d"
  "libheron_tpcc.a"
  "libheron_tpcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heron_tpcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
