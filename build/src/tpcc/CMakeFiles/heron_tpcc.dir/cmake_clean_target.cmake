file(REMOVE_RECURSE
  "libheron_tpcc.a"
)
