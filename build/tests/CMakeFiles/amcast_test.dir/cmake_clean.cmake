file(REMOVE_RECURSE
  "CMakeFiles/amcast_test.dir/amcast_test.cpp.o"
  "CMakeFiles/amcast_test.dir/amcast_test.cpp.o.d"
  "amcast_test"
  "amcast_test.pdb"
  "amcast_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amcast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
