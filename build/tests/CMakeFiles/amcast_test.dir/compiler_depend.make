# Empty compiler generated dependencies file for amcast_test.
# This may be replaced when dependencies are built.
