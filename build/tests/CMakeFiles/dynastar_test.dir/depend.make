# Empty dependencies file for dynastar_test.
# This may be replaced when dependencies are built.
