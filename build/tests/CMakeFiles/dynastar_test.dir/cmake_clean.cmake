file(REMOVE_RECURSE
  "CMakeFiles/dynastar_test.dir/dynastar_test.cpp.o"
  "CMakeFiles/dynastar_test.dir/dynastar_test.cpp.o.d"
  "dynastar_test"
  "dynastar_test.pdb"
  "dynastar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynastar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
