file(REMOVE_RECURSE
  "CMakeFiles/statetransfer_test.dir/statetransfer_test.cpp.o"
  "CMakeFiles/statetransfer_test.dir/statetransfer_test.cpp.o.d"
  "statetransfer_test"
  "statetransfer_test.pdb"
  "statetransfer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statetransfer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
