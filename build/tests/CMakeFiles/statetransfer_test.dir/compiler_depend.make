# Empty compiler generated dependencies file for statetransfer_test.
# This may be replaced when dependencies are built.
