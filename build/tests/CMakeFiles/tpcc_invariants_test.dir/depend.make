# Empty dependencies file for tpcc_invariants_test.
# This may be replaced when dependencies are built.
