file(REMOVE_RECURSE
  "CMakeFiles/tpcc_invariants_test.dir/tpcc_invariants_test.cpp.o"
  "CMakeFiles/tpcc_invariants_test.dir/tpcc_invariants_test.cpp.o.d"
  "tpcc_invariants_test"
  "tpcc_invariants_test.pdb"
  "tpcc_invariants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcc_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
