file(REMOVE_RECURSE
  "CMakeFiles/multithread_test.dir/multithread_test.cpp.o"
  "CMakeFiles/multithread_test.dir/multithread_test.cpp.o.d"
  "multithread_test"
  "multithread_test.pdb"
  "multithread_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multithread_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
