# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/rdma_test[1]_include.cmake")
include("/root/repo/build/tests/amcast_test[1]_include.cmake")
include("/root/repo/build/tests/object_store_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/tpcc_test[1]_include.cmake")
include("/root/repo/build/tests/dynastar_test[1]_include.cmake")
include("/root/repo/build/tests/statetransfer_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/property_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/multithread_test[1]_include.cmake")
include("/root/repo/build/tests/failover_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_test[1]_include.cmake")
include("/root/repo/build/tests/tpcc_invariants_test[1]_include.cmake")
